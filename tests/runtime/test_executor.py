"""Tests for the sweep executors (repro.runtime.executor).

Covers the acceptance criteria of the runtime layer:

* process-pool results are *identical* to serial results (aggregated
  figure values included);
* a second run of the same grid against a warm cache performs **zero**
  simulations (asserted via the executor's cells-simulated counter);
* one spec hash -> bit-for-bit one result (deterministic seeding).
"""

import pytest

from repro.experiments.figures import adaptive_sweep, figure6, figure7
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    ProcessPoolBackend,
    SerialBackend,
    SweepExecutor,
    make_executor,
    run_spec,
)
from repro.runtime.spec import MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.workload.generator import GeneratorParams, generate_taskset, taskset_seeds
from repro.workload.scenarios import SHORT

# The whole module sweeps a small Fig. 6-shaped grid: 2 task sets on
# m=2, two s values, one scenario -> 4 cells per sweep.
PARAMS = GeneratorParams(m=2)
S_VALUES = (0.4, 1.0)


@pytest.fixture(scope="module")
def refs():
    return [TaskSetSpec.generated(seed, PARAMS)
            for seed in taskset_seeds(2, base_seed=11)]


@pytest.fixture(scope="module")
def grid(refs):
    return [
        RunSpec(
            taskset=ref,
            scenario=ScenarioSpec.from_scenario(SHORT),
            monitor=MonitorSpec("simple", s),
            horizon=20.0,
        )
        for s in S_VALUES
        for ref in refs
    ]


@pytest.fixture(scope="module")
def serial_results(grid):
    return SerialBackend().run(grid)


class TestRunSpecExecution:
    def test_run_spec_produces_result(self, grid):
        r = run_spec(grid[0])
        assert r.scenario == "SHORT"
        assert r.monitor == "SIMPLE(s=0.4)"
        assert r.dissipation > 0

    def test_same_spec_hash_same_result_bit_for_bit(self, grid):
        """Deterministic-seeding regression: one key, one result."""
        spec = grid[0]
        again = RunSpec(
            taskset=TaskSetSpec.generated(11, PARAMS),
            scenario=ScenarioSpec.from_scenario(SHORT),
            monitor=MonitorSpec("simple", 0.4),
            horizon=20.0,
        )
        assert spec.key() == again.key()
        assert run_spec(spec) == run_spec(again)

    def test_inline_and_generated_specs_agree(self, grid):
        ts = generate_taskset(11, PARAMS)
        inline = RunSpec(
            taskset=TaskSetSpec.from_taskset(ts),
            scenario=ScenarioSpec.from_scenario(SHORT),
            monitor=MonitorSpec("simple", 0.4),
            horizon=20.0,
        )
        # Different content address (different taskset encoding)...
        assert inline.key() != grid[0].key()
        # ...but the same simulated reality.
        assert run_spec(inline) == run_spec(grid[0])


class TestBackendEquivalence:
    def test_serial_preserves_order_and_stats(self, grid, serial_results):
        ex = SerialBackend()
        results = ex.run(grid)
        assert results == serial_results
        assert [r.monitor for r in results] == [
            "SIMPLE(s=0.4)", "SIMPLE(s=0.4)", "SIMPLE(s=1)", "SIMPLE(s=1)"
        ]
        assert ex.stats.cells_total == 4
        assert ex.stats.cells_simulated == 4
        assert ex.stats.cache_hits == 0

    def test_process_pool_identical_to_serial(self, grid, serial_results):
        ex = ProcessPoolBackend(jobs=4)
        assert ex.run(grid) == serial_results
        assert ex.stats.cells_simulated == 4

    def test_figures_identical_across_backends(self, refs):
        serial = figure6(refs, s_values=S_VALUES, scenarios=(SHORT,),
                         horizon=20.0, executor=SerialBackend())
        pooled = figure6(refs, s_values=S_VALUES, scenarios=(SHORT,),
                         horizon=20.0, executor=ProcessPoolBackend(jobs=4))
        assert pooled == serial

    def test_figure7_identical_across_backends(self, refs):
        serial = figure7(adaptive_sweep(refs, a_values=(0.4,), scenarios=(SHORT,),
                                        horizon=20.0, executor=SerialBackend()))
        pooled = figure7(adaptive_sweep(refs, a_values=(0.4,), scenarios=(SHORT,),
                                        horizon=20.0,
                                        executor=ProcessPoolBackend(jobs=4)))
        assert pooled == serial

    def test_single_cell_runs_inline(self, grid):
        # One cell never pays for a pool.
        ex = ProcessPoolBackend(jobs=4)
        [r] = ex.run(grid[:1])
        assert r == run_spec(grid[0])

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(jobs=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(jobs=2, chunksize=0)


class TestCaching:
    def test_second_run_simulates_nothing(self, tmp_path, grid, serial_results):
        cache = ResultCache(tmp_path)
        first = SerialBackend(cache=cache)
        assert first.run(grid) == serial_results
        assert first.stats.cells_simulated == len(grid)
        assert first.stats.cache_hits == 0

        second = SerialBackend(cache=cache)
        assert second.run(grid) == serial_results
        assert second.stats.cells_simulated == 0
        assert second.stats.cache_hits == len(grid)

    def test_cache_shared_across_backends(self, tmp_path, grid, serial_results):
        cache = ResultCache(tmp_path)
        SerialBackend(cache=cache).run(grid)
        pooled = ProcessPoolBackend(jobs=2, cache=cache)
        assert pooled.run(grid) == serial_results
        assert pooled.stats.cells_simulated == 0
        assert pooled.stats.cache_hits == len(grid)

    def test_changed_cell_simulates_only_that_cell(self, tmp_path, grid):
        cache = ResultCache(tmp_path)
        SerialBackend(cache=cache).run(grid)
        changed = list(grid) + [
            RunSpec(
                taskset=grid[0].taskset,
                scenario=ScenarioSpec.from_scenario(SHORT),
                monitor=MonitorSpec("simple", 0.8),
                horizon=20.0,
            )
        ]
        ex = SerialBackend(cache=cache)
        results = ex.run(changed)
        assert ex.stats.cells_simulated == 1
        assert ex.stats.cache_hits == len(grid)
        assert results[-1].monitor == "SIMPLE(s=0.8)"

    def test_total_accumulates_across_runs(self, tmp_path, grid):
        cache = ResultCache(tmp_path)
        ex = SerialBackend(cache=cache)
        ex.run(grid)
        ex.run(grid)
        assert ex.total.cells_total == 2 * len(grid)
        assert ex.total.cells_simulated == len(grid)
        assert ex.total.cache_hits == len(grid)


class TestMakeExecutor:
    def test_serial_by_default(self):
        ex = make_executor()
        assert isinstance(ex, SerialBackend)
        assert ex.cache is None

    def test_jobs_selects_pool(self, tmp_path):
        ex = make_executor(jobs=4, cache_dir=str(tmp_path))
        assert isinstance(ex, ProcessPoolBackend)
        assert ex.jobs == 4
        assert isinstance(ex.cache, ResultCache)

    def test_base_class_is_abstract(self, grid):
        with pytest.raises(NotImplementedError):
            SweepExecutor()._execute(grid[:1])
