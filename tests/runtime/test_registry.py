"""Tests for the plugin registries (repro.runtime.registry)."""

import pytest

from repro.core.monitor import Monitor, SimpleMonitor
from repro.runtime.registry import (
    MonitorKind,
    Registry,
    monitor_registry,
    scheduler_registry,
)
from repro.runtime.spec import MonitorSpec
from repro.sim.kernel import MC2Kernel
from repro.workload.generator import GeneratorParams, generate_taskset


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("demo")
        reg.register("a", 1)
        assert reg.get("a") == 1
        assert "a" in reg
        assert reg.keys() == ("a",)
        assert len(reg) == 1

    def test_duplicate_registration_rejected(self):
        reg = Registry("demo")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)
        assert reg.get("a") == 1

    def test_override_replaces(self):
        reg = Registry("demo")
        reg.register("a", 1)
        reg.register("a", 2, override=True)
        assert reg.get("a") == 2

    def test_unknown_key_lists_registered_kinds(self):
        reg = Registry("demo")
        reg.register("alpha", 1)
        reg.register("beta", 2)
        with pytest.raises(ValueError, match=r"alpha, beta"):
            reg.get("gamma")

    def test_empty_registry_message(self):
        reg = Registry("demo")
        with pytest.raises(ValueError, match="<none>"):
            reg.get("anything")

    def test_bad_key_rejected(self):
        reg = Registry("demo")
        with pytest.raises(ValueError):
            reg.register("", 1)

    def test_unregister(self):
        reg = Registry("demo")
        reg.register("a", 1)
        reg.unregister("a")
        assert "a" not in reg
        with pytest.raises(KeyError):
            reg.unregister("a")

    def test_iteration_sorted(self):
        reg = Registry("demo")
        reg.register("b", 2)
        reg.register("a", 1)
        assert list(reg) == ["a", "b"]


class TestBuiltinRegistrations:
    def test_builtin_monitor_kinds_present(self):
        for kind in ("simple", "adaptive", "stepped", "clamped", "none"):
            assert kind in monitor_registry

    def test_builtin_scheduler_kinds_present(self):
        for kind in ("table_driven", "pedf", "gel", "best_effort"):
            assert kind in scheduler_registry
            assert callable(scheduler_registry.get(kind))

    def test_unknown_monitor_kind_error_is_dynamic(self):
        with pytest.raises(ValueError) as exc:
            MonitorSpec("bogus")
        msg = str(exc.value)
        for kind in monitor_registry.keys():
            assert kind in msg


class _EchoMonitor(SimpleMonitor):
    """Stand-in third-party policy (behaviourally SIMPLE)."""


class TestThirdPartyMonitorKind:
    """A registered kind is a first-class citizen of MonitorSpec."""

    @pytest.fixture()
    def registered(self):
        monitor_registry.register(
            "echo",
            MonitorKind(
                kind="echo",
                build=lambda kernel, param, extra: _EchoMonitor(kernel, s=param),
                label=lambda param, extra: f"ECHO(s={param:g})",
            ),
            override=True,
        )
        yield
        monitor_registry.unregister("echo")

    def test_registered_kind_builds_and_labels(self, registered):
        spec = MonitorSpec("echo", 0.5)
        assert spec.label == "ECHO(s=0.5)"
        kernel = MC2Kernel(generate_taskset(3, GeneratorParams(m=2)))
        monitor = spec.build(kernel)
        assert isinstance(monitor, Monitor)
        assert isinstance(monitor, _EchoMonitor)

    def test_validation_still_applies(self, registered):
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            MonitorSpec("echo", 1.5)
