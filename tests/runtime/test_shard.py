"""Tests for the checkpointed, sharded campaign orchestrator.

Pins the module's durability contract:

* content-addressed campaign/shard identity (same cells -> same shards,
  different cells -> :class:`CampaignMismatchError` on re-init);
* lease acquire / re-enter / steal-after-TTL semantics;
* ``work()`` drives a directory to completion, skips finished shards,
  and honours ``max_shards``;
* merged artifacts are **byte-identical** across interruption patterns —
  including a worker subprocess killed with SIGKILL mid-campaign and
  then resumed (the ISSUE's acceptance criterion);
* the faults merge is byte-identical to ``Scorecard.save`` of an
  uninterrupted serial :func:`~repro.faults.campaign.run_campaign`;
* :class:`ShardedBackend` behaves as a drop-in
  :class:`~repro.runtime.executor.SweepExecutor` with resume.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.faults.campaign import CampaignConfig, build_campaign, run_campaign
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SerialBackend
from repro.runtime.shard import (
    CampaignMismatchError,
    CampaignStore,
    IncompleteCampaignError,
    ShardedBackend,
    ShardedCampaign,
    campaign_status,
    iter_campaign_dirs,
    merge_results,
    merge_scorecard,
    prepare_campaign,
    resume_campaign,
    run_sharded_campaign,
    run_workers,
    work,
    write_merged_results,
)
from repro.runtime.spec import MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.workload.generator import GeneratorParams, taskset_seeds
from repro.workload.scenarios import SHORT

PARAMS = GeneratorParams(m=2)


def small_grid(n=4, horizon=2.0):
    """n cheap, deterministic sweep cells (m=2, short horizon)."""
    specs = []
    for seed in taskset_seeds(n, base_seed=11):
        specs.append(
            RunSpec(
                taskset=TaskSetSpec.generated(seed, PARAMS),
                scenario=ScenarioSpec.from_scenario(SHORT),
                monitor=MonitorSpec("simple", 0.6),
                horizon=horizon,
            )
        )
    return specs


@pytest.fixture(scope="module")
def grid():
    return small_grid()


@pytest.fixture(scope="module")
def fault_cells():
    return build_campaign(CampaignConfig(seed=7, cells=4, tasksets=1, horizon=3.0))


# ----------------------------------------------------------------------
# Identity
# ----------------------------------------------------------------------
class TestCampaignIdentity:
    def test_same_cells_same_key_and_shards(self, grid):
        a = ShardedCampaign("sweep", grid, shard_size=2)
        b = ShardedCampaign("sweep", list(grid), shard_size=2)
        assert a.campaign_key == b.campaign_key
        assert [s.shard_id for s in a.shards] == [s.shard_id for s in b.shards]

    def test_key_depends_on_order_and_shard_size(self, grid):
        a = ShardedCampaign("sweep", grid, shard_size=2)
        b = ShardedCampaign("sweep", list(reversed(grid)), shard_size=2)
        c = ShardedCampaign("sweep", grid, shard_size=3)
        assert len({a.campaign_key, b.campaign_key, c.campaign_key}) == 3

    def test_shards_cover_cells_exactly(self, grid):
        c = ShardedCampaign("sweep", grid, shard_size=3)
        spans = [(s.start, s.stop) for s in c.shards]
        assert spans == [(0, 3), (3, 4)]
        assert sum(s.cells for s in c.shards) == len(grid)

    def test_roundtrip_through_dict(self, grid):
        c = ShardedCampaign("sweep", grid, shard_size=2, meta={"x": 1})
        d = ShardedCampaign.from_dict(c.to_dict())
        assert d.campaign_key == c.campaign_key
        assert d.meta == {"x": 1}
        assert d.cells == c.cells

    def test_faults_roundtrip(self, fault_cells):
        c = ShardedCampaign("faults", fault_cells, shard_size=4)
        d = ShardedCampaign.from_dict(c.to_dict())
        assert d.campaign_key == c.campaign_key

    def test_corrupt_manifest_key_rejected(self, grid):
        doc = ShardedCampaign("sweep", grid, shard_size=2).to_dict()
        doc["key"] = "0" * 64
        with pytest.raises(ValueError, match="does not match"):
            ShardedCampaign.from_dict(doc)

    def test_validation(self, grid):
        with pytest.raises(ValueError, match="unknown campaign kind"):
            ShardedCampaign("nope", grid)
        with pytest.raises(ValueError, match="shard_size"):
            ShardedCampaign("sweep", grid, shard_size=0)
        with pytest.raises(ValueError, match="at least one cell"):
            ShardedCampaign("sweep", [])

    def test_mismatched_directory_rejected(self, grid, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(ShardedCampaign("sweep", grid, shard_size=2))
        with pytest.raises(CampaignMismatchError):
            store.initialize(ShardedCampaign("sweep", grid[:2], shard_size=2))
        # Re-initializing the *same* campaign is idempotent.
        store.initialize(ShardedCampaign("sweep", grid, shard_size=2))


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------
class TestLeases:
    def test_acquire_is_exclusive_then_reentrant(self, grid, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(ShardedCampaign("sweep", grid, shard_size=2))
        assert store.try_acquire("s1", "alice", lease_ttl=60.0)
        assert not store.try_acquire("s1", "bob", lease_ttl=60.0)
        assert store.try_acquire("s1", "alice", lease_ttl=60.0)  # re-enter

    def test_expired_lease_is_stolen(self, grid, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(ShardedCampaign("sweep", grid, shard_size=2))
        t = [1000.0]
        assert store.try_acquire("s1", "alice", lease_ttl=5.0, clock=lambda: t[0])
        t[0] += 60.0  # heartbeat is now stale
        assert store.try_acquire("s1", "bob", lease_ttl=5.0, clock=lambda: t[0])
        assert store.read_lease("s1")["owner"] == "bob"

    def test_heartbeat_keeps_lease_alive(self, grid, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(ShardedCampaign("sweep", grid, shard_size=2))
        t = [1000.0]
        assert store.try_acquire("s1", "alice", lease_ttl=5.0, clock=lambda: t[0])
        for _ in range(5):
            t[0] += 4.0
            store.heartbeat("s1", "alice", clock=lambda: t[0])
        assert not store.try_acquire("s1", "bob", lease_ttl=5.0, clock=lambda: t[0])

    def test_release_only_by_owner(self, grid, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(ShardedCampaign("sweep", grid, shard_size=2))
        assert store.try_acquire("s1", "alice", lease_ttl=60.0)
        store.release("s1", "bob")  # no-op: bob doesn't own it
        assert store.read_lease("s1")["owner"] == "alice"
        store.release("s1", "alice")
        assert store.read_lease("s1") is None

    def test_torn_lease_file_is_reclaimed(self, grid, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(ShardedCampaign("sweep", grid, shard_size=2))
        path = store.lease_path("s1")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json", encoding="utf-8")
        assert store.try_acquire("s1", "bob", lease_ttl=60.0)

    def test_wall_clock_jump_does_not_steal_live_lease(
        self, grid, tmp_path, monkeypatch
    ):
        # Regression: staleness must be judged on the monotonic clock.
        # A wall-clock step (NTP, suspend/resume) during a lease's life
        # used to make a live worker look stale; now a forward jump far
        # past the TTL changes nothing.
        store = CampaignStore(tmp_path)
        store.initialize(ShardedCampaign("sweep", grid, shard_size=2))
        assert store.try_acquire("s1", "alice", lease_ttl=5.0)
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + 1000.0)
        assert not store.try_acquire("s1", "bob", lease_ttl=5.0)
        assert store.read_lease("s1")["owner"] == "alice"

    def test_backwards_wall_clock_does_not_refresh_stale_lease(
        self, grid, tmp_path, monkeypatch
    ):
        # The mirror case: the wall clock stepping backwards must not
        # make a genuinely expired lease look fresh.
        store = CampaignStore(tmp_path)
        store.initialize(ShardedCampaign("sweep", grid, shard_size=2))
        t = [1000.0]
        assert store.try_acquire("s1", "alice", lease_ttl=5.0, clock=lambda: t[0])
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() - 1000.0)
        t[0] += 60.0  # monotonic says stale, whatever the wall clock does
        assert store.try_acquire("s1", "bob", lease_ttl=5.0, clock=lambda: t[0])
        assert store.read_lease("s1")["owner"] == "bob"


# ----------------------------------------------------------------------
# work() / resume
# ----------------------------------------------------------------------
class TestWork:
    def test_work_completes_and_merges(self, grid, tmp_path):
        cdir = prepare_campaign(tmp_path, ShardedCampaign("sweep", grid, shard_size=2))
        stats = work(cdir)
        assert stats.shards_claimed == 2
        assert stats.cells_run == len(grid)
        assert all(s.state == "done" for s in campaign_status(cdir))
        results = merge_results(cdir)
        assert len(results) == len(grid)
        # Merged order is campaign (submission) order.
        expected = SerialBackend().run(grid)
        assert results == expected

    def test_max_shards_stops_early_and_resume_finishes(self, grid, tmp_path):
        cdir = prepare_campaign(tmp_path, ShardedCampaign("sweep", grid, shard_size=1))
        stats = work(cdir, max_shards=2)
        assert stats.shards_claimed == 2
        states = [s.state for s in campaign_status(cdir)]
        assert states.count("done") == 2
        with pytest.raises(IncompleteCampaignError) as exc:
            merge_results(cdir)
        assert len(exc.value.missing) == 2
        tail = resume_campaign(cdir)
        assert tail.shards_claimed == 2
        assert tail.shards_skipped == 2
        assert len(merge_results(cdir)) == len(grid)

    def test_second_work_call_skips_everything(self, grid, tmp_path):
        cdir = prepare_campaign(tmp_path, ShardedCampaign("sweep", grid, shard_size=2))
        work(cdir)
        again = work(cdir)
        assert again.shards_claimed == 0
        assert again.cells_run == 0
        assert again.shards_skipped == 2

    def test_cache_serves_cells_on_resume(self, grid, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cdir = prepare_campaign(
            tmp_path / "c1", ShardedCampaign("sweep", grid, shard_size=2)
        )
        warm = work(cdir, cache=cache)
        assert warm.cells_run == len(grid) and warm.cache_hits == 0
        # Same cells, fresh campaign dir: every cell is a cache hit.
        cdir2 = prepare_campaign(
            tmp_path / "c2", ShardedCampaign("sweep", grid, shard_size=2)
        )
        hot = work(cdir2, cache=cache)
        assert hot.cells_run == 0 and hot.cache_hits == len(grid)

    def test_foreign_live_lease_blocks_then_expires(self, grid, tmp_path):
        cdir = prepare_campaign(tmp_path, ShardedCampaign("sweep", grid, shard_size=2))
        store = CampaignStore(cdir)
        campaign = store.load()
        dead = campaign.shards[0].shard_id
        assert store.try_acquire(dead, "crashed-worker", lease_ttl=60.0)
        # wait=False: the leased shard is not claimable, the other one runs.
        stats = work(cdir, lease_ttl=60.0, wait=False)
        assert stats.shards_claimed == 1
        # With a tiny TTL the stale lease is reclaimed and work completes.
        stats = work(cdir, lease_ttl=0.0, poll_interval=0.01)
        assert stats.shards_claimed == 1
        assert all(s.state == "done" for s in campaign_status(cdir))

    def test_run_workers_pool_completes(self, grid, tmp_path):
        cdir = prepare_campaign(tmp_path, ShardedCampaign("sweep", grid, shard_size=1))
        stats = run_workers(cdir, jobs=2)
        assert stats.shards_total == len(grid)
        assert all(s.state == "done" for s in campaign_status(cdir))

    def test_iter_campaign_dirs(self, grid, fault_cells, tmp_path):
        a = prepare_campaign(tmp_path, ShardedCampaign("sweep", grid, shard_size=2))
        b = prepare_campaign(tmp_path, ShardedCampaign("faults", fault_cells))
        found = iter_campaign_dirs(tmp_path)
        assert sorted(found) == sorted([a, b])
        # Pointing at one campaign dir finds exactly it.
        assert iter_campaign_dirs(a) == [a]
        assert iter_campaign_dirs(tmp_path / "nope") == []


# ----------------------------------------------------------------------
# Atomicity of shard manifests
# ----------------------------------------------------------------------
class TestManifestAtomicity:
    def test_torn_manifest_reads_as_missing(self, grid, tmp_path):
        cdir = prepare_campaign(tmp_path, ShardedCampaign("sweep", grid, shard_size=2))
        work(cdir)
        store = CampaignStore(cdir)
        shard = store.load().shards[0]
        path = store.shard_path(shard.shard_id)
        path.write_text(path.read_text(encoding="utf-8")[: 100], encoding="utf-8")
        assert store.read_manifest(shard) is None
        # resume re-executes exactly the torn shard.
        stats = resume_campaign(cdir)
        assert stats.shards_claimed == 1

    def test_wrong_cell_count_reads_as_missing(self, grid, tmp_path):
        cdir = prepare_campaign(tmp_path, ShardedCampaign("sweep", grid, shard_size=2))
        work(cdir)
        store = CampaignStore(cdir)
        shard = store.load().shards[0]
        path = store.shard_path(shard.shard_id)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["results"] = doc["results"][:1]
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert store.read_manifest(shard) is None

    def test_stray_tmp_files_are_ignored(self, grid, tmp_path):
        cdir = prepare_campaign(tmp_path, ShardedCampaign("sweep", grid, shard_size=2))
        work(cdir)
        (cdir / "shards" / "merged.json.abc123.tmp").write_text("garbage")
        assert len(merge_results(cdir)) == len(grid)


# ----------------------------------------------------------------------
# Byte-identity of merged artifacts
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_sweep_merge_identical_across_interruptions(self, grid, tmp_path):
        baseline = None
        for i, pattern in enumerate(["all", "one-by-one", "pool"]):
            cdir = prepare_campaign(
                tmp_path / pattern, ShardedCampaign("sweep", grid, shard_size=2)
            )
            if pattern == "all":
                work(cdir)
            elif pattern == "one-by-one":
                while any(s.state != "done" for s in campaign_status(cdir)):
                    work(cdir, max_shards=1, owner=f"w{i}")
            else:
                run_workers(cdir, jobs=2)
            blob = write_merged_results(cdir).read_bytes()
            if baseline is None:
                baseline = blob
            assert blob == baseline

    def test_faults_merge_identical_to_serial_scorecard(self, fault_cells, tmp_path):
        serial = run_campaign(fault_cells)
        serial_path = tmp_path / "serial.json"
        serial.save(str(serial_path))
        merged_sc, cdir, _ = run_sharded_campaign(
            fault_cells, tmp_path / "ckpt", shard_size=2
        )
        merged = (pathlib.Path(cdir) / "merged.json").read_bytes()
        assert merged == serial_path.read_bytes()
        # The in-memory merge agrees with the serial campaign too.
        assert merged_sc.to_json() == serial.to_json()
        assert merge_scorecard(cdir).summary() == serial.summary()

    def test_merged_rewrite_is_stable(self, grid, tmp_path):
        cdir = prepare_campaign(tmp_path, ShardedCampaign("sweep", grid, shard_size=2))
        work(cdir)
        b1 = write_merged_results(cdir).read_bytes()
        b2 = write_merged_results(cdir).read_bytes()
        assert b1 == b2
        doc = json.loads(b1)
        assert doc["format"] == "repro-sweep-results"
        assert doc["summary"]["cells"] == len(grid)


# ----------------------------------------------------------------------
# kill -9 mid-campaign, then resume (the acceptance criterion)
# ----------------------------------------------------------------------
_WORKER_SRC = """
import sys
from repro.runtime.shard import work
# Tiny heartbeats so the parent can kill us mid-shard deterministically:
# touch a beacon file after the first cell, then keep working.
import repro.runtime.shard as shard
orig = shard._execute_shard
def beaconed(store, campaign, s, owner, cache, clock, on_cell=None):
    def tick(cached):
        open(sys.argv[2], "a").write("cell\\n")
        if on_cell is not None:
            on_cell(cached)
    return orig(store, campaign, s, owner, cache, clock, tick)
shard._execute_shard = beaconed
work(sys.argv[1], owner="victim", lease_ttl=0.5)
"""


class TestKillResume:
    def test_sigkill_mid_campaign_then_resume_is_byte_identical(
        self, grid, tmp_path
    ):
        # Reference: uninterrupted single-process run.
        ref_dir = prepare_campaign(
            tmp_path / "ref", ShardedCampaign("sweep", grid, shard_size=1)
        )
        work(ref_dir)
        reference = write_merged_results(ref_dir).read_bytes()

        # Victim: a real worker subprocess, SIGKILLed after it has
        # completed at least one cell (so there is in-flight state).
        vic_dir = prepare_campaign(
            tmp_path / "vic", ShardedCampaign("sweep", grid, shard_size=1)
        )
        beacon = tmp_path / "beacon"
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _WORKER_SRC, str(vic_dir), str(beacon)],
            env=env,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if beacon.exists() and beacon.read_text().count("cell") >= 1:
                    break
                if proc.poll() is not None:
                    break  # finished before we could kill it - still valid
                time.sleep(0.01)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait()

        # The campaign must be resumable despite the corpse's lease.
        states = {s.state for s in campaign_status(vic_dir)}
        assert states  # directory is readable
        stats = resume_campaign(vic_dir, lease_ttl=0.5)
        assert all(s.state == "done" for s in campaign_status(vic_dir))
        assert stats.shards_total == len(grid)
        merged = (pathlib.Path(vic_dir) / "merged.json").read_bytes()
        assert merged == reference


# ----------------------------------------------------------------------
# ShardedBackend (SweepExecutor integration)
# ----------------------------------------------------------------------
class TestShardedBackend:
    def test_matches_serial_backend(self, grid, tmp_path):
        sharded = ShardedBackend(tmp_path, shard_size=2)
        results = sharded.run(grid)
        assert results == SerialBackend().run(grid)
        assert sharded.stats.cells_total == len(grid)
        assert sharded.stats.cells_simulated == len(grid)
        assert sharded.report.cells_total == len(grid)
        assert sharded.last_campaign_dir is not None

    def test_second_run_skips_all_shards(self, grid, tmp_path):
        first = ShardedBackend(tmp_path, shard_size=2)
        r1 = first.run(grid)
        second = ShardedBackend(tmp_path, shard_size=2)
        r2 = second.run(grid)
        assert r1 == r2
        assert second.stats.cells_simulated == 0

    def test_cache_shared_with_other_backends(self, grid, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SerialBackend(cache=cache).run(grid)
        sharded = ShardedBackend(tmp_path / "ckpt", shard_size=2, cache=cache)
        sharded.run(grid)
        assert sharded.stats.cells_simulated == 0
        assert sharded.stats.cache_hits == len(grid)

    def test_jobs_validation(self, tmp_path):
        with pytest.raises(ValueError, match="jobs"):
            ShardedBackend(tmp_path, jobs=0)
