"""Batched "many short runs" execution: byte-identity and task-set reuse.

Batch mode (``batch_cells=True`` / ``--batch-cells``) simulates whole
slices of a sweep in one process, materializing each distinct task-set
spec once per slice.  Its contract is strict: results — and for the
checkpointed backend, the merged campaign artifact — are byte-identical
to per-cell execution; only the wall clock changes.
"""

import pathlib

import pytest

import repro.runtime.executor as executor_mod
from repro.io.results_json import run_result_to_dict
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    ProcessPoolBackend,
    SerialBackend,
    make_executor,
    run_spec,
    run_specs_batch,
)
from repro.runtime.shard import ShardedBackend
from repro.runtime.spec import (
    KernelSpec,
    MonitorSpec,
    RunSpec,
    ScenarioSpec,
    TaskSetSpec,
)


def grid(backends=("reference",), seeds=(2015, 2016)):
    """A small sweep grid: seeds x monitors (x kernel backends)."""
    specs = []
    for seed in seeds:
        for kind, param in (("simple", 0.6), ("adaptive", 0.5), ("none", 1.0)):
            for backend in backends:
                specs.append(RunSpec(
                    taskset=TaskSetSpec.generated(seed),
                    scenario=ScenarioSpec(name="single", windows=((1.0, 2.0),)),
                    monitor=MonitorSpec(kind=kind, param=param),
                    kernel=KernelSpec(backend=backend),
                    horizon=6.0,
                ))
    return specs


@pytest.fixture(scope="module")
def specs():
    return grid()


@pytest.fixture(scope="module")
def per_cell_docs(specs):
    return [run_result_to_dict(run_spec(s)) for s in specs]


class TestRunSpecsBatch:
    def test_identical_to_per_cell(self, specs, per_cell_docs):
        docs = [run_result_to_dict(r) for r in run_specs_batch(specs)]
        assert docs == per_cell_docs

    def test_identical_across_kernel_backends(self):
        specs = grid(backends=("reference", "soa"), seeds=(2015,))
        docs = [run_result_to_dict(r) for r in run_specs_batch(specs)]
        assert docs == [run_result_to_dict(run_spec(s)) for s in specs]

    def test_materializes_each_taskset_once(self, specs, monkeypatch):
        calls = []
        orig = TaskSetSpec.materialize

        def counting(self):
            calls.append(self)
            return orig(self)

        monkeypatch.setattr(TaskSetSpec, "materialize", counting)
        run_specs_batch(specs)
        distinct = {s.taskset for s in specs}
        assert len(calls) == len(distinct), (
            f"expected one materialization per distinct task set "
            f"({len(distinct)}), saw {len(calls)}"
        )


class TestBackendsBatchMode:
    def test_serial_batch(self, specs, per_cell_docs):
        ex = SerialBackend(batch_cells=True)
        assert [run_result_to_dict(r) for r in ex.run(specs)] == per_cell_docs
        assert ex.stats.cells_simulated == len(specs)

    def test_pool_batch(self, specs, per_cell_docs):
        ex = ProcessPoolBackend(jobs=2, batch_cells=True)
        assert [run_result_to_dict(r) for r in ex.run(specs)] == per_cell_docs
        assert ex.stats.cells_simulated == len(specs)
        assert ex.stats.pool_breaks == 0

    def test_pool_batch_chunksize_one(self, specs, per_cell_docs):
        # Degenerate slicing (one cell per batch) still preserves order.
        ex = ProcessPoolBackend(jobs=2, batch_cells=True, chunksize=1)
        assert [run_result_to_dict(r) for r in ex.run(specs)] == per_cell_docs

    def test_batch_with_cache(self, specs, per_cell_docs, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ex = SerialBackend(cache=cache, batch_cells=True)
        first = [run_result_to_dict(r) for r in ex.run(specs)]
        assert first == per_cell_docs
        again = [run_result_to_dict(r) for r in ex.run(specs)]
        assert again == per_cell_docs
        assert ex.stats.cache_hits == len(specs)
        assert ex.stats.cells_simulated == 0

    def test_make_executor_threads_flag(self, tmp_path):
        assert make_executor(jobs=1, batch_cells=True).batch_cells
        assert make_executor(jobs=4, batch_cells=True).batch_cells
        sharded = make_executor(
            jobs=1, batch_cells=True, checkpoint_dir=str(tmp_path / "cp")
        )
        assert isinstance(sharded, ShardedBackend) and sharded.batch_cells
        assert not make_executor(jobs=1).batch_cells


class TestShardedBatchMode:
    def test_full_shard_byte_identical(self, specs, per_cell_docs, tmp_path):
        """Acceptance: batched sweep execution over a full shard produces
        a byte-identical merged artifact to per-cell execution."""
        a = ShardedBackend(tmp_path / "cell", shard_size=4)
        docs_a = [run_result_to_dict(r) for r in a.run(specs)]
        b = ShardedBackend(tmp_path / "batch", shard_size=4, batch_cells=True)
        docs_b = [run_result_to_dict(r) for r in b.run(specs)]
        assert docs_a == per_cell_docs
        assert docs_b == per_cell_docs
        merged_a = (a.last_campaign_dir / "merged.json").read_bytes()
        merged_b = (b.last_campaign_dir / "merged.json").read_bytes()
        assert merged_a == merged_b

    def test_batch_manifest_with_warm_cache(self, specs, per_cell_docs, tmp_path):
        """Hits and misses interleave in the manifest exactly as the
        per-cell path records them (cell order, cached flags)."""
        cache = ResultCache(tmp_path / "cache")
        for s in specs[::2]:
            cache.put(s.key(), {}, run_spec(s))
        ex = ShardedBackend(
            tmp_path / "cp", shard_size=4, batch_cells=True, cache=cache
        )
        docs = [run_result_to_dict(r) for r in ex.run(specs)]
        assert docs == per_cell_docs
        assert ex.stats.cache_hits == len(specs[::2])
        assert ex.stats.cells_simulated == len(specs) - len(specs[::2])
        report_flags = [c.cached for c in ex.report.cells]
        assert report_flags == [i % 2 == 0 for i in range(len(specs))]

    def test_batch_resume_after_partial_run(self, specs, tmp_path):
        """Batch workers interoperate with the lease/manifest fabric:
        a partial batch run resumes to the same merged artifact."""
        from repro.runtime.shard import (
            ShardedCampaign,
            prepare_campaign,
            run_workers,
            write_merged_results,
        )

        campaign = ShardedCampaign("sweep", specs, shard_size=4)
        cdir = prepare_campaign(tmp_path / "resume", campaign)
        run_workers(cdir, max_shards=1, batch=True)
        stats = run_workers(cdir, batch=True)
        assert stats.shards_skipped == 1
        merged = write_merged_results(cdir).read_bytes()

        ref = ShardedBackend(tmp_path / "ref", shard_size=4)
        ref.run(specs)
        assert merged == (ref.last_campaign_dir / "merged.json").read_bytes()
