"""Worker-death resilience: map_pool_resilient and its executor wiring.

Worker death is simulated by substituting a fake ProcessPoolExecutor
whose ``map`` raises ``BrokenProcessPool`` partway through — the same
exception a SIGKILLed/OOMed worker produces — so the tests exercise the
real retry / serial-fallback paths deterministically and in-process.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.runtime.executor as executor_mod
from repro.runtime.executor import PoolDegradation, map_pool_resilient
from repro.runtime.spec import MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.workload.generator import GeneratorParams
from repro.workload.scenarios import SHORT


def _square(x):
    return x * x


class _FlakyPoolFactory:
    """Builds fake pools; the first *break_first* of them die after
    yielding *yield_before_break* results, the rest complete."""

    def __init__(self, break_first=1, yield_before_break=2):
        self.created = 0
        self._break_first = break_first
        self._yield_before = yield_before_break

    def __call__(self, max_workers):
        self.created += 1
        breaks = self.created <= self._break_first
        factory = self

        class _FakePool:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, items, chunksize=1):
                for i, item in enumerate(items):
                    if breaks and i >= factory._yield_before:
                        raise BrokenProcessPool("worker died")
                    yield fn(item)

        return _FakePool()


@pytest.fixture
def patch_pool(monkeypatch):
    def apply(factory):
        monkeypatch.setattr(
            executor_mod.concurrent.futures, "ProcessPoolExecutor", factory
        )
        return factory

    return apply


class TestMapPoolResilient:
    def test_healthy_pool_no_degradation(self, patch_pool):
        factory = patch_pool(_FlakyPoolFactory(break_first=0))
        results, deg = map_pool_resilient(_square, list(range(6)), 2, 1)
        assert results == [x * x for x in range(6)]
        assert deg == PoolDegradation()
        assert factory.created == 1

    def test_single_break_is_retried_on_a_fresh_pool(self, patch_pool):
        factory = patch_pool(_FlakyPoolFactory(break_first=1, yield_before_break=2))
        results, deg = map_pool_resilient(_square, list(range(6)), 2, 1)
        assert results == [x * x for x in range(6)]
        assert deg.breaks == 1
        assert deg.retried == 4  # 6 items minus the 2 collected pre-break
        assert deg.serial_fallback == 0
        assert factory.created == 2

    def test_double_break_falls_back_to_serial(self, patch_pool):
        factory = patch_pool(_FlakyPoolFactory(break_first=2, yield_before_break=2))
        results, deg = map_pool_resilient(_square, list(range(6)), 2, 1)
        assert results == [x * x for x in range(6)]
        assert deg.breaks == 2
        assert deg.retried == 4
        assert deg.serial_fallback == 2  # collected 2 + 2, ran 2 in-process
        assert factory.created == 2

    def test_on_result_sees_every_item_once(self, patch_pool):
        patch_pool(_FlakyPoolFactory(break_first=2, yield_before_break=1))
        seen = []
        results, _ = map_pool_resilient(
            _square, list(range(5)), 2, 1, on_result=seen.append
        )
        assert seen == results


class TestExecutorIntegration:
    @pytest.fixture(scope="class")
    def specs(self):
        params = GeneratorParams(m=2)
        return [
            RunSpec(
                taskset=TaskSetSpec.generated(seed, params),
                scenario=ScenarioSpec.from_scenario(SHORT),
                monitor=MonitorSpec("simple", 0.6),
                horizon=10.0,
            )
            for seed in (21, 22, 23)
        ]

    def test_worker_death_degrades_not_fails(self, specs, patch_pool, monkeypatch):
        from repro.runtime.executor import ProcessPoolBackend, SerialBackend

        expected = SerialBackend().run(specs)
        patch_pool(_FlakyPoolFactory(break_first=2, yield_before_break=1))
        ex = ProcessPoolBackend(jobs=2)
        results = ex.run(specs)
        assert [r.dissipation for r in results] == [
            r.dissipation for r in expected
        ]
        assert ex.stats.pool_breaks == 2
        assert ex.stats.pool_retried == 2
        assert ex.stats.pool_serial_fallback == 1
