"""Telemetry threaded through sharded campaigns: coexistence with
heartbeats/leases, survival of SIGKILL + resume, and result-neutrality
(merged artifacts are byte-identical with telemetry on or off)."""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.obs.telemetry import (
    TelemetryAggregator,
    aggregate_campaign,
    iter_telemetry_files,
    read_telemetry,
)
from repro.runtime.shard import (
    ShardedCampaign,
    campaign_status,
    prepare_campaign,
    resume_campaign,
    work,
    write_merged_results,
)
from repro.runtime.spec import MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.workload.generator import GeneratorParams, taskset_seeds
from repro.workload.scenarios import SHORT

PARAMS = GeneratorParams(m=2)


def small_grid(n=4, horizon=2.0):
    specs = []
    for seed in taskset_seeds(n, base_seed=23):
        specs.append(
            RunSpec(
                taskset=TaskSetSpec.generated(seed, PARAMS),
                scenario=ScenarioSpec.from_scenario(SHORT),
                monitor=MonitorSpec("simple", 0.6),
                horizon=horizon,
            )
        )
    return specs


@pytest.fixture(scope="module")
def grid():
    return small_grid()


class TestTelemetryCoexistence:
    def test_worker_writes_stream_next_to_heartbeats(self, grid, tmp_path):
        cdir = prepare_campaign(
            tmp_path, ShardedCampaign("sweep", grid, shard_size=2)
        )
        work(cdir, owner="w0", telemetry=True)
        files = iter_telemetry_files(cdir)
        assert len(files) == 1
        assert files[0].name == "w0.ndjson"
        # Lease files (the heartbeat substrate) and shard manifests are
        # untouched by the telemetry stream.
        assert (cdir / "leases").is_dir()
        assert all(s.state == "done" for s in campaign_status(cdir))

        records = list(read_telemetry(files[0]))
        assert records[0]["rec"] == "meta"
        final = [r for r in records if r.get("final") is True]
        assert len(final) == 1
        assert final[0]["cells_done"] == len(grid)
        assert final[0]["shards_done"] == 2
        assert final[0]["leases_acquired"] == 2
        assert final[0]["leases_stolen"] == 0
        assert final[0]["backend"] == "reference"
        # Kernel phase profiling rode along: counters are non-zero.
        assert final[0]["phases"]["engine_pop"]["count"] > 0

    def test_aggregate_matches_campaign(self, grid, tmp_path):
        cdir = prepare_campaign(
            tmp_path, ShardedCampaign("sweep", grid, shard_size=2)
        )
        campaign = ShardedCampaign("sweep", grid, shard_size=2)
        work(cdir, owner="w0", telemetry=True)
        agg = aggregate_campaign(cdir)
        assert agg["campaign"] == campaign.campaign_key
        assert agg["totals"]["cells_done"] == len(grid)
        assert agg["workers"]["w0"]["final"] is True


class TestResultNeutrality:
    def test_merged_artifact_identical_telemetry_on_or_off(self, grid, tmp_path):
        off_dir = prepare_campaign(
            tmp_path / "off", ShardedCampaign("sweep", grid, shard_size=2)
        )
        work(off_dir, owner="w-off")
        off_bytes = write_merged_results(off_dir).read_bytes()

        on_dir = prepare_campaign(
            tmp_path / "on", ShardedCampaign("sweep", grid, shard_size=2)
        )
        work(on_dir, owner="w-on", telemetry=True)
        on_bytes = write_merged_results(on_dir).read_bytes()

        assert on_bytes == off_bytes
        # Telemetry never leaks into the canonical artifact.
        assert b"telemetry" not in on_bytes
        assert b"phases" not in on_bytes


_WORKER_SRC = """
import sys
from repro.runtime.shard import work
import repro.runtime.shard as shard
orig = shard._execute_shard
def beaconed(store, campaign, s, owner, cache, clock,
             on_cell=None, batch=False, telemetry=None):
    def tick(cached):
        open(sys.argv[2], "a").write("cell\\n")
        if on_cell is not None:
            on_cell(cached)
    return orig(store, campaign, s, owner, cache, clock, tick,
                batch, telemetry)
shard._execute_shard = beaconed
work(sys.argv[1], owner="victim", lease_ttl=0.5, telemetry=True)
"""


class TestKillResumeWithTelemetry:
    def test_sigkill_then_resume_merges_and_aggregates(self, grid, tmp_path):
        # Reference artifact: uninterrupted, telemetry off.
        ref_dir = prepare_campaign(
            tmp_path / "ref", ShardedCampaign("sweep", grid, shard_size=1)
        )
        work(ref_dir)
        reference = write_merged_results(ref_dir).read_bytes()

        vic_dir = prepare_campaign(
            tmp_path / "vic", ShardedCampaign("sweep", grid, shard_size=1)
        )
        beacon = tmp_path / "beacon"
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _WORKER_SRC, str(vic_dir), str(beacon)],
            env=env,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if beacon.exists() and beacon.read_text().count("cell") >= 1:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.01)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait()

        # The victim never reached close(): its stream has no final
        # sample (and possibly a torn last line) — it must still parse.
        vic_files = iter_telemetry_files(vic_dir)
        assert len(vic_files) == 1
        assert not any(
            r.get("final") is True for r in read_telemetry(vic_files[0])
        )

        stats = resume_campaign(vic_dir, lease_ttl=0.5, telemetry=True)
        assert stats.shards_total == len(grid)
        assert all(s.state == "done" for s in campaign_status(vic_dir))

        # Canonical artifact: byte-identical to the telemetry-off
        # uninterrupted reference despite kill + telemetry.
        merged = (pathlib.Path(vic_dir) / "merged.json").read_bytes()
        assert merged == reference

        # Both streams (corpse + rescuer) aggregate; totals cover the
        # whole campaign even though the victim's tail is missing.
        agg = aggregate_campaign(vic_dir)
        assert len(agg["workers"]) == 2
        assert "victim" in agg["workers"]
        assert agg["totals"]["cells_done"] >= len(grid)
        rescuer = next(o for o in agg["workers"] if o != "victim")
        assert agg["workers"][rescuer]["final"] is True

    def test_torn_telemetry_line_does_not_break_aggregation(self, grid, tmp_path):
        cdir = prepare_campaign(
            tmp_path, ShardedCampaign("sweep", grid, shard_size=2)
        )
        work(cdir, owner="w0", telemetry=True)
        path = iter_telemetry_files(cdir)[0]
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"rec": "sample", "seq": 4096, "cells_do')
        agg = aggregate_campaign(cdir)
        assert agg["totals"]["cells_done"] == len(grid)

        # The merge is still deterministic with the torn tail present.
        a = TelemetryAggregator()
        a.add_campaign(cdir)
        b = TelemetryAggregator()
        b.add_campaign(cdir)
        assert a.to_json() == b.to_json()


class TestStealAccounting:
    def test_reclaimed_lease_counts_as_steal(self, grid, tmp_path):
        cdir = prepare_campaign(
            tmp_path, ShardedCampaign("sweep", grid, shard_size=2)
        )
        store_clock = [1000.0]

        def clock():
            return store_clock[0]

        # First worker claims shard 0 then "dies" (we only plant the lease).
        from repro.runtime.shard import CampaignStore

        store = CampaignStore(cdir)
        campaign = store.load()
        assert store.try_acquire(campaign.shards[0].shard_id, "corpse", 0.5, clock)

        # TTL expires; a telemetry-enabled worker reclaims it.
        store_clock[0] += 10.0
        work(cdir, owner="rescuer", lease_ttl=0.5, clock=clock, telemetry=True)
        agg = TelemetryAggregator()
        agg.add_campaign(cdir)
        doc = json.loads(agg.to_json())
        assert doc["workers"]["rescuer"]["leases_stolen"] == 1
