"""Tests for repro.util.stats (means and confidence intervals)."""

import math

import numpy as np
import pytest
from scipy import stats as sps

from repro.util.stats import ConfidenceInterval, mean_ci, summarize


class TestMeanCI:
    def test_mean_of_constant_sample(self):
        ci = mean_ci([3.0, 3.0, 3.0, 3.0])
        assert ci.mean == 3.0
        assert ci.half_width == 0.0

    def test_single_sample_has_zero_half_width(self):
        ci = mean_ci([7.5])
        assert ci.mean == 7.5
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="at least one sample"):
            mean_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError, match="confidence"):
            mean_ci([1.0, 2.0], confidence=1.0)
        with pytest.raises(ValueError, match="confidence"):
            mean_ci([1.0, 2.0], confidence=0.0)

    def test_matches_textbook_formula(self):
        xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        ci = mean_ci(xs, confidence=0.95)
        n = len(xs)
        s = np.std(xs, ddof=1)
        t = sps.t.ppf(0.975, df=n - 1)
        assert ci.mean == pytest.approx(np.mean(xs))
        assert ci.half_width == pytest.approx(t * s / math.sqrt(n))

    def test_interval_endpoints_and_contains(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0, confidence=0.95, n=5)
        assert ci.low == 8.0
        assert ci.high == 12.0
        assert ci.contains(10.0)
        assert ci.contains(8.0)
        assert not ci.contains(12.001)

    def test_wider_confidence_wider_interval(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert mean_ci(xs, 0.99).half_width > mean_ci(xs, 0.95).half_width

    def test_half_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(0)
        small = rng.normal(0, 1, size=10)
        large = np.concatenate([small, rng.normal(0, 1, size=190)])
        assert mean_ci(large).half_width < mean_ci(small).half_width

    def test_coverage_of_true_mean(self):
        """95% CI should contain the true mean roughly 95% of the time."""
        rng = np.random.default_rng(42)
        hits = 0
        trials = 400
        for _ in range(trials):
            xs = rng.normal(5.0, 2.0, size=20)
            if mean_ci(xs).contains(5.0):
                hits += 1
        assert 0.90 <= hits / trials <= 0.99


class TestSummarize:
    def test_basic_summary(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_single_element_std_zero(self):
        s = summarize([2.0])
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
