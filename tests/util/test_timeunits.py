"""Tests for repro.util.timeunits."""

import pytest

from repro.util.timeunits import MS, NS, SEC, US, from_ms, from_us, to_ms, to_us


def test_unit_constants_ratios():
    assert SEC == 1.0
    assert MS == pytest.approx(1e-3)
    assert US == pytest.approx(1e-6)
    assert NS == pytest.approx(1e-9)
    assert MS / US == pytest.approx(1000.0)


def test_from_ms_matches_paper_periods():
    assert from_ms(25) == pytest.approx(0.025)
    assert from_ms(300) == pytest.approx(0.3)


def test_ms_roundtrip():
    for v in (0.0, 0.01, 12.5, 100.0):
        assert to_ms(from_ms(v)) == pytest.approx(v)


def test_us_roundtrip():
    for v in (0.0, 1.0, 37.2):
        assert to_us(from_us(v)) == pytest.approx(v)
