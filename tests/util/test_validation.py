"""Tests for repro.util.validation."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
)


class TestCheckFinite:
    def test_accepts_numbers(self):
        check_finite("x", 0)
        check_finite("x", -3.5)

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan, "no", None])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_finite("x", bad)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("p", 1e-9)

    @pytest.mark.parametrize("bad", [0, -1, math.inf, math.nan])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive("p", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        check_nonnegative("y", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="y"):
            check_nonnegative("y", -0.001)


class TestCheckInRange:
    def test_closed_interval(self):
        check_in_range("s", 0.0, 0.0, 1.0)
        check_in_range("s", 1.0, 0.0, 1.0)

    def test_open_low_endpoint_rejects_boundary(self):
        """The recovery-speed constraint 0 < s <= 1."""
        check_in_range("s", 0.5, 0.0, 1.0, low_open=True)
        with pytest.raises(ValueError, match=r"\(0\.0"):
            check_in_range("s", 0.0, 0.0, 1.0, low_open=True)

    def test_open_high_endpoint_rejects_boundary(self):
        with pytest.raises(ValueError, match=r"1\.0\)"):
            check_in_range("s", 1.0, 0.0, 1.0, high_open=True)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_in_range("s", 1.5, 0.0, 1.0)
