"""Tests for the monitor programs (Algorithms 2-4).

These drive the monitor state machines directly with crafted
CompletionReports, independent of the simulator, so every pseudocode
branch is exercised in isolation.
"""

import pytest

from repro.core.monitor import (
    AdaptiveMonitor,
    CompletionReport,
    NullMonitor,
    SimpleMonitor,
)
from tests.conftest import make_c_task


class FakeController:
    """Records change_speed calls."""

    def __init__(self):
        self.calls = []

    def change_speed(self, new_speed, now):
        self.calls.append((now, new_speed))


def report(task, k=0, release=0.0, pp=None, comp=1.0, queue_empty=False):
    return CompletionReport(
        task=task, job_index=k, release=release, actual_pp=pp,
        comp_time=comp, queue_empty=queue_empty,
    )


@pytest.fixture
def task():
    # T=4, Y=3, xi=2
    return make_c_task(0, 4.0, 1.0, y=3.0, tolerance=2.0)


@pytest.fixture
def task2():
    return make_c_task(1, 6.0, 2.0, y=5.0, tolerance=2.0)


class TestCompletionReport:
    def test_unresolved_pp_never_misses(self, task):
        assert not report(task, pp=None, comp=100.0).misses_tolerance

    def test_boundary_meets(self, task):
        # comp == y + xi: meets ("barely within its tolerance").
        assert not report(task, pp=3.0, comp=5.0).misses_tolerance

    def test_miss(self, task):
        assert report(task, pp=3.0, comp=5.1).misses_tolerance

    def test_no_tolerance_raises(self):
        t = make_c_task(0, 4.0, 1.0, tolerance=None)
        with pytest.raises(ValueError, match="tolerance"):
            report(t, pp=3.0, comp=10.0).misses_tolerance

    def test_response_time(self, task):
        assert report(task, release=2.0, comp=9.0).response_time == 7.0


class TestSimpleMonitor:
    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            SimpleMonitor(FakeController(), s=0.0)
        with pytest.raises(ValueError):
            SimpleMonitor(FakeController(), s=1.1)

    def test_miss_triggers_slowdown_once(self, task):
        ctl = FakeController()
        mon = SimpleMonitor(ctl, s=0.5)
        mon.on_job_release((0, 0))
        mon.on_job_complete(report(task, pp=3.0, comp=6.0))
        assert ctl.calls == [(6.0, 0.5)]
        assert mon.recovery_mode
        # A second miss while already recovering does not change speed again.
        mon.on_job_release((0, 1))
        mon.on_job_complete(report(task, k=1, release=4.0, pp=7.0, comp=10.0))
        assert ctl.calls == [(6.0, 0.5)]

    def test_meeting_jobs_do_not_trigger(self, task):
        ctl = FakeController()
        mon = SimpleMonitor(ctl, s=0.5)
        mon.on_job_release((0, 0))
        mon.on_job_complete(report(task, pp=3.0, comp=5.0))
        assert ctl.calls == []
        assert not mon.recovery_mode

    def test_recovery_exits_at_idle_normal_instant(self, task, task2):
        """The full Algorithm 2 walk: candidate set drains => speed 1."""
        ctl = FakeController()
        mon = SimpleMonitor(ctl, s=0.5)
        # Two jobs pending; one completes with a miss and an empty queue:
        # comp_time becomes the candidate idle instant, the other job is
        # pend_idle_cand.
        mon.on_job_release((0, 0))
        mon.on_job_release((1, 0))
        mon.on_job_complete(report(task, pp=3.0, comp=6.0, queue_empty=True))
        assert mon.recovery_mode
        assert mon.idle_cand == 6.0
        assert mon.pend_idle_cand == {(1, 0)}
        # The candidate job completes within tolerance: recovery ends.
        mon.on_job_complete(report(task2, pp=5.0, comp=7.0, queue_empty=False))
        assert not mon.recovery_mode
        assert ctl.calls[-1] == (7.0, 1.0)
        assert mon.episodes[-1].end == 7.0

    def test_candidate_discarded_on_later_miss(self, task, task2):
        """Algorithm 2 lines 13-15: a miss invalidates the candidate."""
        ctl = FakeController()
        mon = SimpleMonitor(ctl, s=0.5)
        mon.on_job_release((0, 0))
        mon.on_job_release((1, 0))
        mon.on_job_complete(report(task, pp=3.0, comp=6.0, queue_empty=True))
        assert mon.idle_cand == 6.0
        # Candidate member misses: candidate dropped, still recovering.
        mon.on_job_complete(report(task2, pp=5.0, comp=8.0, queue_empty=False))
        assert mon.recovery_mode
        assert mon.idle_cand is None
        assert mon.pend_idle_cand == set()

    def test_candidate_reestablished_on_idle_completion(self, task, task2):
        """Algorithm 2 lines 18-20 after a discarded candidate."""
        ctl = FakeController()
        mon = SimpleMonitor(ctl, s=0.5)
        mon.on_job_release((0, 0))
        mon.on_job_complete(report(task, pp=3.0, comp=6.0, queue_empty=False))
        assert mon.recovery_mode and mon.idle_cand is None
        mon.on_job_release((1, 0))
        mon.on_job_complete(report(task2, pp=9.0, comp=10.0, queue_empty=True))
        # New candidate at 10; pend_now empty => exit immediately.
        assert not mon.recovery_mode
        assert ctl.calls[-1] == (10.0, 1.0)

    def test_miss_with_empty_system_recovers_immediately(self, task):
        """Miss with empty queue and nothing pending: instant exit."""
        ctl = FakeController()
        mon = SimpleMonitor(ctl, s=0.5)
        mon.on_job_release((0, 0))
        mon.on_job_complete(report(task, pp=3.0, comp=6.0, queue_empty=True))
        assert not mon.recovery_mode
        assert ctl.calls == [(6.0, 0.5), (6.0, 1.0)]
        ep = mon.episodes[-1]
        assert ep.start == 6.0 and ep.end == 6.0

    def test_second_episode_recorded(self, task):
        ctl = FakeController()
        mon = SimpleMonitor(ctl, s=0.5)
        for k, comp in ((0, 6.0), (1, 16.0)):
            mon.on_job_release((0, k))
            mon.on_job_complete(
                report(task, k=k, release=comp - 6.0, pp=comp - 3.0, comp=comp,
                       queue_empty=True)
            )
        assert len(mon.episodes) == 2
        assert all(e.end is not None for e in mon.episodes)
        assert mon.miss_count == 2

    def test_pend_now_tracks_releases_and_completions(self, task):
        mon = SimpleMonitor(FakeController(), s=0.5)
        mon.on_job_release((0, 0))
        mon.on_job_release((0, 1))
        assert mon.pend_now == {(0, 0), (0, 1)}
        mon.on_job_complete(report(task, k=0, pp=None, comp=1.0))
        assert mon.pend_now == {(0, 1)}


class TestAdaptiveMonitor:
    def test_invalid_aggressiveness(self):
        with pytest.raises(ValueError):
            AdaptiveMonitor(FakeController(), a=0.0)

    def test_speed_formula(self, task):
        """s = a * (Y + xi) / R on the first miss."""
        ctl = FakeController()
        mon = AdaptiveMonitor(ctl, a=0.8)
        mon.on_job_release((0, 0))
        # R = 10, Y + xi = 5 => s = 0.8 * 0.5 = 0.4
        mon.on_job_complete(report(task, release=0.0, pp=3.0, comp=10.0))
        assert ctl.calls == [(10.0, pytest.approx(0.4))]
        assert mon.current_speed == pytest.approx(0.4)

    def test_only_ratchets_downward(self, task):
        ctl = FakeController()
        mon = AdaptiveMonitor(ctl, a=0.8)
        mon.on_job_release((0, 0))
        mon.on_job_release((0, 1))
        mon.on_job_complete(report(task, k=0, release=0.0, pp=3.0, comp=10.0))
        # Second miss with a *smaller* normalized response: no change.
        mon.on_job_complete(report(task, k=1, release=4.0, pp=7.0, comp=13.0))
        assert len(ctl.calls) == 1
        # Third miss with larger response: ratchets down.
        mon.on_job_release((0, 2))
        mon.on_job_complete(report(task, k=2, release=8.0, pp=11.0, comp=28.0))
        assert ctl.calls[-1][1] == pytest.approx(0.8 * 5.0 / 20.0)

    def test_speed_resets_per_episode(self, task):
        ctl = FakeController()
        mon = AdaptiveMonitor(ctl, a=0.8)
        # Episode 1: ends immediately (queue empty, nothing pending).
        mon.on_job_release((0, 0))
        mon.on_job_complete(
            report(task, k=0, release=0.0, pp=3.0, comp=10.0, queue_empty=True)
        )
        assert not mon.recovery_mode
        # Episode 2: a milder miss should still slow down (vs 1.0 reset).
        mon.on_job_release((0, 1))
        mon.on_job_complete(
            report(task, k=1, release=20.0, pp=23.0, comp=26.0, queue_empty=True)
        )
        slow = [s for _, s in ctl.calls if s < 1.0]
        assert len(slow) == 2
        assert slow[1] == pytest.approx(0.8 * 5.0 / 6.0)

    def test_minimum_requested_speed(self, task):
        ctl = FakeController()
        mon = AdaptiveMonitor(ctl, a=0.6)
        mon.on_job_release((0, 0))
        mon.on_job_complete(report(task, release=0.0, pp=3.0, comp=15.0))
        assert mon.minimum_requested_speed() == pytest.approx(0.6 * 5.0 / 15.0)


class TestNullMonitor:
    def test_never_changes_speed_but_counts_misses(self, task):
        ctl = FakeController()
        mon = NullMonitor(ctl)
        mon.on_job_release((0, 0))
        mon.on_job_complete(report(task, pp=3.0, comp=50.0))
        assert ctl.calls == []
        assert not mon.recovery_mode
        assert mon.miss_count == 1

    def test_tolerates_unconfigured_tolerance(self):
        t = make_c_task(0, 4.0, 1.0, tolerance=None)
        mon = NullMonitor(FakeController())
        mon.on_job_release((0, 0))
        mon.on_job_complete(report(t, pp=3.0, comp=50.0))  # no raise
        assert mon.miss_count == 0
