"""Tests for GEL / G-FL priority points (repro.core.gel)."""

import pytest

from repro.core.gel import (
    apply_relative_pps,
    gedf_relative_pps,
    gfl_relative_pp,
    gfl_relative_pps,
    virtual_priority,
)
from repro.model.job import Job
from tests.conftest import make_a_task, make_c_task


class TestGFL:
    def test_formula(self):
        # Y = T - (m-1)/m * C
        assert gfl_relative_pp(4.0, 2.0, m=2) == pytest.approx(3.0)
        assert gfl_relative_pp(10.0, 4.0, m=4) == pytest.approx(7.0)

    def test_uniprocessor_reduces_to_edf(self):
        """On m=1, G-FL PPs equal periods (EDF)."""
        assert gfl_relative_pp(10.0, 4.0, m=1) == 10.0

    def test_clamped_at_zero(self):
        assert gfl_relative_pp(1.0, 10.0, m=4) == 0.0

    def test_bad_m(self):
        with pytest.raises(ValueError):
            gfl_relative_pp(1.0, 1.0, m=0)

    def test_bulk_assignment_skips_non_c(self):
        tasks = [make_c_task(0, 4.0, 2.0), make_a_task(1, 10.0, 0.5, cpu=0)]
        pps = gfl_relative_pps(tasks, m=2)
        assert set(pps) == {0}
        assert pps[0] == pytest.approx(3.0)

    def test_gfl_pp_earlier_than_gedf(self):
        """G-FL places PPs earlier than deadlines for m > 1."""
        tasks = [make_c_task(0, 4.0, 2.0)]
        assert gfl_relative_pps(tasks, m=2)[0] < gedf_relative_pps(tasks)[0]


class TestGEDF:
    def test_pp_equals_period(self):
        tasks = [make_c_task(0, 4.0, 2.0), make_c_task(1, 6.0, 3.0)]
        assert gedf_relative_pps(tasks) == {0: 4.0, 1: 6.0}


class TestApplyRelativePPs:
    def test_replaces_only_listed(self):
        tasks = (make_c_task(0, 4.0, 2.0, y=4.0), make_c_task(1, 6.0, 3.0, y=6.0))
        out = apply_relative_pps(tasks, {0: 3.0})
        assert out[0].relative_pp == 3.0
        assert out[1].relative_pp == 6.0


class TestVirtualPriority:
    def test_key_orders_by_virtual_pp(self):
        t = make_c_task(0, 4.0, 2.0)
        j1 = Job(task=t, index=0, release=0.0, exec_time=1.0)
        j1.virtual_pp = 3.0
        t2 = make_c_task(1, 6.0, 2.0)
        j2 = Job(task=t2, index=0, release=0.0, exec_time=1.0)
        j2.virtual_pp = 5.0
        assert virtual_priority(j1) < virtual_priority(j2)

    def test_ties_broken_by_task_then_index(self):
        ta, tb = make_c_task(0, 4.0, 2.0), make_c_task(1, 4.0, 2.0)
        ja = Job(task=ta, index=1, release=0.0, exec_time=1.0)
        jb = Job(task=tb, index=0, release=0.0, exec_time=1.0)
        ja.virtual_pp = jb.virtual_pp = 3.0
        assert virtual_priority(ja) < virtual_priority(jb)
        ja2 = Job(task=ta, index=2, release=4.0, exec_time=1.0)
        ja2.virtual_pp = 3.0
        assert virtual_priority(ja) < virtual_priority(ja2)

    def test_missing_virtual_pp_rejected(self):
        j = Job(task=make_c_task(0, 4.0, 2.0), index=0, release=0.0, exec_time=1.0)
        with pytest.raises(ValueError, match="priority point"):
            virtual_priority(j)
