"""Tests for the extension monitor policies (repro.core.policies)."""

import pytest

from repro.core.monitor import CompletionReport
from repro.core.policies import ClampedAdaptiveMonitor, SteppedRestoreMonitor
from tests.conftest import make_c_task


class FakeCtl:
    def __init__(self):
        self.calls = []

    def change_speed(self, s, now):
        self.calls.append((now, s))


def report(task, k=0, release=0.0, pp=None, comp=1.0, queue_empty=False):
    return CompletionReport(task=task, job_index=k, release=release,
                            actual_pp=pp, comp_time=comp, queue_empty=queue_empty)


@pytest.fixture
def task():
    # Y = 3, xi = 2 => Y + xi = 5.
    return make_c_task(0, 4.0, 1.0, y=3.0, tolerance=2.0)


class TestClampedAdaptive:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClampedAdaptiveMonitor(FakeCtl(), a=0.0, floor=0.1)
        with pytest.raises(ValueError):
            ClampedAdaptiveMonitor(FakeCtl(), a=0.5, floor=1.5)

    def test_clamps_at_floor(self, task):
        ctl = FakeCtl()
        mon = ClampedAdaptiveMonitor(ctl, a=0.8, floor=0.3)
        mon.on_job_release((0, 0))
        # Unclamped ADAPTIVE would choose 0.8 * 5 / 100 = 0.04.
        mon.on_job_complete(report(task, release=0.0, pp=3.0, comp=100.0))
        assert ctl.calls == [(100.0, pytest.approx(0.3))]

    def test_behaves_like_adaptive_above_floor(self, task):
        ctl = FakeCtl()
        mon = ClampedAdaptiveMonitor(ctl, a=0.8, floor=0.1)
        mon.on_job_release((0, 0))
        # 0.8 * 5 / 10 = 0.4 > floor.
        mon.on_job_complete(report(task, release=0.0, pp=3.0, comp=10.0))
        assert ctl.calls == [(10.0, pytest.approx(0.4))]

    def test_zero_floor_is_plain_adaptive(self, task):
        from repro.core.monitor import AdaptiveMonitor

        ctl_a, ctl_c = FakeCtl(), FakeCtl()
        plain = AdaptiveMonitor(ctl_a, a=0.6)
        clamped = ClampedAdaptiveMonitor(ctl_c, a=0.6, floor=0.0)
        for mon in (plain, clamped):
            mon.on_job_release((0, 0))
            mon.on_job_complete(report(task, release=0.0, pp=3.0, comp=25.0))
        assert ctl_a.calls == ctl_c.calls

    def test_ratchets_down_only(self, task):
        ctl = FakeCtl()
        mon = ClampedAdaptiveMonitor(ctl, a=0.8, floor=0.1)
        for k, comp in ((0, 10.0), (1, 11.0)):
            mon.on_job_release((0, k))
            mon.on_job_complete(report(task, k=k, release=comp - 10.0,
                                       pp=comp - 7.0, comp=comp))
        assert len(ctl.calls) == 1  # second (milder) miss: no change


class TestSteppedRestore:
    def test_validation(self):
        with pytest.raises(ValueError):
            SteppedRestoreMonitor(FakeCtl(), s=0.0)
        with pytest.raises(ValueError):
            SteppedRestoreMonitor(FakeCtl(), s=0.5, step_factor=1.0)

    def test_single_step_when_factor_reaches_one(self, task):
        """s = 0.6, factor 2: 1.2 >= 1, so it behaves like SIMPLE."""
        ctl = FakeCtl()
        mon = SteppedRestoreMonitor(ctl, s=0.6, step_factor=2.0)
        mon.on_job_release((0, 0))
        mon.on_job_complete(report(task, pp=3.0, comp=6.0, queue_empty=True))
        # miss -> slow to 0.6; empty system -> exit straight to 1.
        assert ctl.calls == [(6.0, 0.6), (6.0, 1.0)]
        assert not mon.recovery_mode
        assert mon.episodes[-1].end == 6.0

    def test_intermediate_plateaus(self, task):
        """Each exit opportunity advances one plateau: a fresh idle normal
        instant is verified at every intermediate speed."""
        ctl = FakeCtl()
        mon = SteppedRestoreMonitor(ctl, s=0.25, step_factor=2.0)
        mon.on_job_release((0, 0))
        mon.on_job_complete(report(task, k=0, pp=3.0, comp=6.0, queue_empty=True))
        # Slowed to 0.25, exit found immediately -> plateau 0.5 installed,
        # still in recovery awaiting verification at 0.5.
        assert [s for _, s in ctl.calls] == [0.25, 0.5]
        assert mon.recovery_mode
        assert mon.current_speed == 0.5
        # The next tolerant completion verifies the plateau: full speed.
        mon.on_job_release((0, 1))
        mon.on_job_complete(report(task, k=1, release=10.0, pp=13.0, comp=14.0,
                                   queue_empty=True))
        assert [s for _, s in ctl.calls] == [0.25, 0.5, 1.0]
        assert not mon.recovery_mode

    def test_episode_stays_open_until_full_speed(self, task):
        ctl = FakeCtl()
        mon = SteppedRestoreMonitor(ctl, s=0.25, step_factor=2.0)
        other = make_c_task(1, 6.0, 2.0, y=5.0, tolerance=2.0)
        mon.on_job_release((0, 0))
        mon.on_job_release((1, 0))  # second job keeps the system busy
        mon.on_job_complete(report(task, pp=3.0, comp=6.0, queue_empty=True))
        # Still at the first plateau: the candidate set holds the other job.
        assert mon.recovery_mode
        assert mon.episodes[-1].end is None
        assert mon.current_speed == 0.25
        # The candidate job completes fine: step to 0.5, episode still open.
        mon.on_job_complete(report(other, k=0, pp=5.0, comp=7.0, queue_empty=True))
        assert mon.recovery_mode
        assert mon.current_speed == 0.5
        assert mon.episodes[-1].end is None
        # One more tolerant completion verifies 0.5: full speed, episode closed.
        mon.on_job_release((0, 1))
        mon.on_job_complete(report(task, k=1, release=10.0, pp=13.0, comp=14.0,
                                   queue_empty=True))
        assert not mon.recovery_mode
        assert mon.episodes[-1].end == 14.0
        assert [s for _, s in ctl.calls] == [0.25, 0.5, 1.0]

    def test_new_miss_during_plateau_does_not_reslow(self, task):
        """Within one episode the plateau holds; handle_miss only acts
        when recovery_mode is off."""
        ctl = FakeCtl()
        mon = SteppedRestoreMonitor(ctl, s=0.25, step_factor=2.0)
        mon.on_job_release((0, 0))
        mon.on_job_release((0, 1))
        mon.on_job_complete(report(task, k=0, pp=3.0, comp=6.0, queue_empty=False))
        assert mon.recovery_mode
        mon.on_job_complete(report(task, k=1, release=4.0, pp=7.0, comp=12.0,
                                   queue_empty=False))
        assert [s for _, s in ctl.calls] == [0.25]


class TestPoliciesEndToEnd:
    def test_stepped_runs_in_kernel(self):
        from repro.experiments.runner import MonitorSpec, run_overload_experiment
        from repro.workload.generator import GeneratorParams, generate_taskset
        from repro.workload.scenarios import SHORT

        ts = generate_taskset(5, GeneratorParams(m=2))
        r = run_overload_experiment(ts, SHORT, MonitorSpec("stepped", 0.2, 1.5))
        assert not r.truncated
        assert r.min_speed == pytest.approx(0.2)
        # Gradual restore takes at least as long as plain SIMPLE(0.2).
        base = run_overload_experiment(ts, SHORT, MonitorSpec("simple", 0.2))
        assert r.dissipation >= base.dissipation - 1e-9

    def test_clamped_bounds_min_speed_in_kernel(self):
        from repro.experiments.runner import MonitorSpec, run_overload_experiment
        from repro.workload.generator import GeneratorParams, generate_taskset
        from repro.workload.scenarios import SHORT

        ts = generate_taskset(5, GeneratorParams(m=2))
        plain = run_overload_experiment(ts, SHORT, MonitorSpec("adaptive", 0.6))
        clamped = run_overload_experiment(ts, SHORT, MonitorSpec("clamped", 0.6, 0.4))
        assert plain.min_speed < 0.4
        assert clamped.min_speed >= 0.4 - 1e-9
        assert not clamped.truncated
