"""Tests for tolerance assignment (repro.core.tolerance)."""

import pytest

from repro.analysis.bounds import gel_response_bounds
from repro.core.tolerance import assign_tolerances, fixed_tolerances
from repro.model.task import CriticalityLevel as L
from repro.model.taskset import TaskSet
from tests.conftest import make_c_task


@pytest.fixture
def slack_set():
    return TaskSet(
        [make_c_task(0, 4.0, 1.0, y=3.0), make_c_task(1, 8.0, 2.0, y=6.0)], m=2
    )


class TestAssignTolerances:
    def test_tolerance_equals_pp_relative_bound(self, slack_set):
        out = assign_tolerances(slack_set)
        bounds = gel_response_bounds(slack_set)
        for t in out.level(L.C):
            assert t.tolerance == pytest.approx(bounds.pp_relative[t.task_id])

    def test_margin_scales(self, slack_set):
        base = assign_tolerances(slack_set)
        wide = assign_tolerances(slack_set, margin=2.0)
        for t in base.level(L.C):
            assert wide[t.task_id].tolerance == pytest.approx(2.0 * t.tolerance)

    def test_margin_below_one_rejected(self, slack_set):
        with pytest.raises(ValueError, match="margin"):
            assign_tolerances(slack_set, margin=0.5)

    def test_infeasible_set_rejected(self):
        # Fully utilized (no slack): infinite bound, no tolerance exists.
        ts = TaskSet([make_c_task(0, 1.0, 1.0, y=1.0),
                      make_c_task(1, 1.0, 1.0, y=1.0)], m=2)
        with pytest.raises(ValueError, match="infinite"):
            assign_tolerances(ts)

    def test_non_c_tasks_untouched(self, mixed_taskset):
        out = assign_tolerances(mixed_taskset)
        for t in out:
            if t.level is not L.C:
                assert t.tolerance is None


class TestFixedTolerances:
    def test_sets_same_value_everywhere(self, slack_set):
        out = fixed_tolerances(slack_set, 3.0)
        assert all(t.tolerance == 3.0 for t in out.level(L.C))

    def test_zero_allowed(self, slack_set):
        out = fixed_tolerances(slack_set, 0.0)
        assert all(t.tolerance == 0.0 for t in out.level(L.C))

    def test_negative_rejected(self, slack_set):
        with pytest.raises(ValueError):
            fixed_tolerances(slack_set, -1.0)
