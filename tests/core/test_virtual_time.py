"""Tests for the virtual clock (Algorithm 1 / eq. 4 / Fig. 5)."""

from fractions import Fraction

import pytest

from repro.core.virtual_time import SpeedChange, SpeedProfile, VirtualClock


class TestPaperWorkedExample:
    """Sec. 3: s = 0.5 on [19, 29) gives v(25) = 19 + 3 = 22."""

    def test_v25_equals_22(self):
        prof = SpeedProfile.from_segments(0.0, [(19.0, 0.5), (29.0, 1.0)])
        assert prof.v(25.0) == pytest.approx(22.0)

    def test_v19_boundary(self):
        prof = SpeedProfile.from_segments(0.0, [(19.0, 0.5), (29.0, 1.0)])
        assert prof.v(19.0) == pytest.approx(19.0)

    def test_v29_is_24(self):
        prof = SpeedProfile.from_segments(0.0, [(19.0, 0.5), (29.0, 1.0)])
        assert prof.v(29.0) == pytest.approx(24.0)

    def test_tau1_release_arithmetic(self):
        """Sec. 3's tau_1 walkthrough: T=4, Y=3, slowdown at 19.

        tau_{1,5} has v(r) = 20, i.e. actual release 21; its PP is 3
        virtual units later (v = 23), i.e. actual 27; tau_{1,6} releases
        4 virtual units after tau_{1,5} (v = 24), i.e. actual 29.
        """
        prof = SpeedProfile.from_segments(0.0, [(19.0, 0.5), (29.0, 1.0)])
        assert prof.inverse(20.0) == pytest.approx(21.0)  # r_{1,5}
        assert prof.inverse(23.0) == pytest.approx(27.0)  # y_{1,5}
        assert prof.inverse(24.0) == pytest.approx(29.0)  # r_{1,6}


class TestVirtualClockStateMachine:
    def test_initialize_matches_algorithm1(self):
        clk = VirtualClock(5.0)
        assert clk.last_act == 5.0
        assert clk.last_virt == 0.0
        assert clk.speed == 1.0

    def test_act_to_virt_identity_at_speed_one(self):
        clk = VirtualClock(0.0)
        assert clk.act_to_virt(7.5) == 7.5

    def test_conversions_after_slowdown(self):
        clk = VirtualClock(0.0)
        clk.change_speed(0.5, 19.0)
        assert clk.act_to_virt(25.0) == pytest.approx(22.0)
        assert clk.virt_to_act(22.0) == pytest.approx(25.0)

    def test_roundtrip_act_virt(self):
        clk = VirtualClock(0.0)
        clk.change_speed(0.25, 3.0)
        for t in (3.0, 4.5, 10.0):
            assert clk.virt_to_act(clk.act_to_virt(t)) == pytest.approx(t)

    def test_change_speed_returns_virtual_time(self):
        clk = VirtualClock(0.0)
        assert clk.change_speed(0.5, 19.0) == pytest.approx(19.0)
        assert clk.change_speed(1.0, 29.0) == pytest.approx(24.0)

    def test_historical_act_query_rejected(self):
        clk = VirtualClock(0.0)
        clk.change_speed(0.5, 10.0)
        with pytest.raises(ValueError, match="predates"):
            clk.act_to_virt(9.0)

    def test_historical_virt_query_rejected(self):
        clk = VirtualClock(0.0)
        clk.change_speed(0.5, 10.0)
        with pytest.raises(ValueError, match="predates"):
            clk.virt_to_act(9.0)

    def test_time_cannot_run_backwards(self):
        clk = VirtualClock(0.0)
        clk.change_speed(0.5, 10.0)
        with pytest.raises(ValueError, match="backwards"):
            clk.change_speed(1.0, 9.0)

    def test_speed_zero_rejected(self):
        clk = VirtualClock(0.0)
        with pytest.raises(ValueError, match="> 0"):
            clk.change_speed(0.0, 1.0)

    def test_speedup_rejected_by_default(self):
        """The paper never speeds virtual time past actual time."""
        clk = VirtualClock(0.0)
        with pytest.raises(ValueError, match="<= 1"):
            clk.change_speed(1.5, 1.0)

    def test_speedup_allowed_with_flag(self):
        clk = VirtualClock(0.0, allow_speedup=True)
        clk.change_speed(2.0, 1.0)
        assert clk.act_to_virt(2.0) == pytest.approx(3.0)

    def test_is_normal_speed(self):
        clk = VirtualClock(0.0)
        assert clk.is_normal_speed
        clk.change_speed(0.5, 1.0)
        assert not clk.is_normal_speed
        clk.change_speed(1.0, 2.0)
        assert clk.is_normal_speed

    def test_history_records_all_changes(self):
        clk = VirtualClock(0.0)
        clk.change_speed(0.5, 19.0)
        clk.change_speed(1.0, 29.0)
        hist = clk.history
        assert len(hist) == 3
        assert hist[1] == SpeedChange(act=19.0, virt=19.0, speed=0.5)
        assert hist[2] == SpeedChange(act=29.0, virt=24.0, speed=1.0)


class TestFractionExactness:
    """The clock is numeric-type agnostic; Fractions stay exact."""

    def test_exact_worked_example(self):
        clk = VirtualClock(Fraction(0))
        clk.change_speed(Fraction(1, 2), Fraction(19))
        assert clk.act_to_virt(Fraction(25)) == Fraction(22)
        assert clk.virt_to_act(Fraction(22)) == Fraction(25)

    def test_exact_awkward_speed(self):
        clk = VirtualClock(Fraction(0))
        clk.change_speed(Fraction(1, 3), Fraction(10))
        assert clk.act_to_virt(Fraction(13)) == Fraction(11)
        clk.change_speed(Fraction(1), Fraction(13))
        assert clk.last_virt == Fraction(11)
        assert clk.act_to_virt(Fraction(14)) == Fraction(12)

    def test_exact_profile(self):
        prof = SpeedProfile.from_segments(
            Fraction(0), [(Fraction(19), Fraction(1, 2)), (Fraction(29), Fraction(1))]
        )
        assert prof.v(Fraction(25)) == Fraction(22)
        assert prof.inverse(Fraction(22)) == Fraction(25)


class TestSpeedProfile:
    def test_evaluates_across_all_segments(self):
        prof = SpeedProfile.from_segments(0.0, [(10.0, 0.5), (20.0, 0.2), (30.0, 1.0)])
        assert prof.v(5.0) == pytest.approx(5.0)
        assert prof.v(15.0) == pytest.approx(12.5)
        assert prof.v(25.0) == pytest.approx(16.0)
        assert prof.v(35.0) == pytest.approx(22.0)

    def test_inverse_is_exact_inverse(self):
        prof = SpeedProfile.from_segments(0.0, [(10.0, 0.5), (20.0, 0.2), (30.0, 1.0)])
        for t in (0.0, 3.0, 10.0, 17.2, 21.0, 33.3):
            assert prof.inverse(prof.v(t)) == pytest.approx(t)

    def test_speed_at_right_continuous(self):
        prof = SpeedProfile.from_segments(0.0, [(10.0, 0.5)])
        assert prof.speed_at(9.999) == 1.0
        assert prof.speed_at(10.0) == 0.5

    def test_minimum_speed(self):
        prof = SpeedProfile.from_segments(0.0, [(10.0, 0.5), (20.0, 0.2), (30.0, 1.0)])
        assert prof.minimum_speed() == 0.2

    def test_query_before_origin_rejected(self):
        prof = SpeedProfile.from_segments(5.0, [])
        with pytest.raises(ValueError, match="precedes"):
            prof.v(4.0)

    def test_inconsistent_history_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            SpeedProfile(
                [
                    SpeedChange(act=0.0, virt=0.0, speed=1.0),
                    SpeedChange(act=10.0, virt=9.0, speed=0.5),  # should be virt=10
                ]
            )

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SpeedProfile([])

    def test_clock_profile_roundtrip(self):
        clk = VirtualClock(0.0)
        clk.change_speed(0.5, 19.0)
        clk.change_speed(1.0, 29.0)
        prof = clk.profile()
        assert prof.v(25.0) == pytest.approx(22.0)
        assert prof.v(30.0) == pytest.approx(25.0)
        assert prof.minimum_speed() == 0.5


class TestDuplicateInstantTies:
    """Two speed changes at the same instant form a zero-length segment;
    the LAST record must win everywhere (right-continuity), matching a
    kernel clock that saw two same-instant change_speed calls."""

    def twice_changed(self):
        # Speed 1 on [0, 10); at t=10 a change to 0.5 is immediately
        # superseded by a change to 0.25 at the same instant.
        return SpeedProfile(
            [
                SpeedChange(act=0.0, virt=0.0, speed=1.0),
                SpeedChange(act=10.0, virt=10.0, speed=0.5),
                SpeedChange(act=10.0, virt=10.0, speed=0.25),
            ]
        )

    def test_speed_at_tie_takes_last_record(self):
        prof = self.twice_changed()
        assert prof.speed_at(10.0) == 0.25
        assert prof.speed_at(9.999) == 1.0
        assert prof.speed_at(10.001) == 0.25

    def test_v_uses_last_records_slope(self):
        prof = self.twice_changed()
        assert prof.v(10.0) == pytest.approx(10.0)
        assert prof.v(14.0) == pytest.approx(11.0)  # 10 + 4 * 0.25

    def test_inverse_uses_last_records_slope(self):
        prof = self.twice_changed()
        assert prof.inverse(10.0) == pytest.approx(10.0)
        assert prof.inverse(11.0) == pytest.approx(14.0)

    def test_matches_same_instant_kernel_clock(self):
        """A clock with two same-instant change_speed calls and its
        profile agree on everything after the tie."""
        clk = VirtualClock(0.0)
        clk.change_speed(0.5, 10.0)
        clk.change_speed(0.25, 10.0)
        prof = clk.profile()
        for act in (10.0, 12.0, 20.0):
            assert prof.v(act) == pytest.approx(clk.act_to_virt(act))
        assert prof.speed_at(10.0) == clk.speed == 0.25

    def test_exact_with_fractions(self):
        prof = SpeedProfile(
            [
                SpeedChange(Fraction(0), Fraction(0), Fraction(1)),
                SpeedChange(Fraction(10), Fraction(10), Fraction(1, 2)),
                SpeedChange(Fraction(10), Fraction(10), Fraction(1, 4)),
            ]
        )
        assert prof.v(Fraction(18)) == Fraction(12)
        assert prof.inverse(Fraction(12)) == Fraction(18)
