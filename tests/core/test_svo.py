"""Tests for the SVO release rule (repro.core.svo, eq. 5)."""

import pytest

from repro.core.svo import ReleaseController
from repro.core.virtual_time import VirtualClock
from tests.conftest import make_a_task, make_c_task


class TestLevelCReleases:
    def test_periodic_in_virtual_time_at_speed_one(self):
        t = make_c_task(0, 4.0, 1.0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t)
        assert ctrl.next_release_actual(clk, 0.0) == 0.0
        idx, v = ctrl.fire(clk, 0.0)
        assert (idx, v) == (0, 0.0)
        assert ctrl.next_release_actual(clk, 0.0) == 4.0
        idx, v = ctrl.fire(clk, 4.0)
        assert (idx, v) == (1, 4.0)

    def test_slowdown_stretches_actual_separation(self):
        """Eq. 5: separation is T_i in *virtual* time."""
        t = make_c_task(0, 4.0, 1.0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t)
        ctrl.fire(clk, 0.0)
        clk.change_speed(0.5, 1.0)
        # v must advance by 4: v(1)=1, need v=4 => actual 1 + 3/0.5 = 7.
        assert ctrl.next_release_actual(clk, 1.0) == pytest.approx(7.0)

    def test_retiming_after_second_speed_change(self):
        """Algorithm 1 lines 21-22: timers re-computed per segment."""
        t = make_c_task(0, 4.0, 1.0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t)
        ctrl.fire(clk, 0.0)
        clk.change_speed(0.5, 1.0)
        assert ctrl.next_release_actual(clk, 1.0) == pytest.approx(7.0)
        clk.change_speed(1.0, 3.0)  # v(3) = 2; need v=4 => actual 5
        assert ctrl.next_release_actual(clk, 3.0) == pytest.approx(5.0)

    def test_early_release_rejected(self):
        t = make_c_task(0, 4.0, 1.0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t)
        ctrl.fire(clk, 0.0)
        with pytest.raises(ValueError, match="eq. 5"):
            ctrl.fire(clk, 3.0)

    def test_late_release_allowed_sporadic(self):
        """Eq. 5 is an inequality: later releases are legal."""
        t = make_c_task(0, 4.0, 1.0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t)
        ctrl.fire(clk, 0.0)
        idx, v = ctrl.fire(clk, 9.0)  # v(9) = 9 >= 4
        assert idx == 1 and v == 9.0
        # Next separation counts from the actual (late) release point.
        assert ctrl.next_release_actual(clk, 9.0) == pytest.approx(13.0)

    def test_overdue_release_clamped_to_now(self):
        t = make_c_task(0, 4.0, 1.0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t)
        ctrl.fire(clk, 0.0)
        assert ctrl.next_release_actual(clk, 10.0) == 10.0

    def test_phase_is_virtual(self):
        t = make_c_task(0, 4.0, 1.0, phase=2.0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t)
        assert ctrl.next_release_actual(clk, 0.0) == 2.0
        assert ctrl.next_release_virtual == 2.0


class TestNonVirtualLevels:
    def test_level_a_periodic_in_actual_time(self):
        t = make_a_task(0, 10.0, 0.5, cpu=0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t)
        assert not ctrl.is_virtual
        ctrl.fire(clk, 0.0)
        # A slowdown must not affect level-A separations.
        clk.change_speed(0.5, 1.0)
        assert ctrl.next_release_actual(clk, 1.0) == 10.0

    def test_next_release_virtual_rejected_for_level_a(self):
        ctrl = ReleaseController(make_a_task(0, 10.0, 0.5, cpu=0))
        with pytest.raises(ValueError, match="virtual"):
            ctrl.next_release_virtual

    def test_early_actual_release_rejected(self):
        t = make_a_task(0, 10.0, 0.5, cpu=0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t)
        ctrl.fire(clk, 0.0)
        with pytest.raises(ValueError, match="separation"):
            ctrl.fire(clk, 9.0)


class TestSporadicDelayHook:
    def test_delay_adds_separation(self):
        t = make_c_task(0, 4.0, 1.0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t, release_delay=lambda task, k: 1.0)
        # First release delayed by the hook too.
        assert ctrl.next_release_actual(clk, 0.0) == 1.0
        ctrl.fire(clk, 1.0)
        assert ctrl.next_release_actual(clk, 1.0) == pytest.approx(1.0 + 4.0 + 1.0)

    def test_negative_delay_clamped(self):
        t = make_c_task(0, 4.0, 1.0)
        clk = VirtualClock(0.0)
        ctrl = ReleaseController(t, release_delay=lambda task, k: -5.0)
        ctrl.fire(clk, 0.0)
        assert ctrl.next_release_actual(clk, 0.0) == 4.0
