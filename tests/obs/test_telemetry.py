"""Telemetry fabric: writer records, torn-line tolerance, deterministic merge."""

import json

import pytest

from repro.obs.telemetry import (
    PHASES,
    TELEMETRY_FORMAT,
    TELEMETRY_VERSION,
    PhaseProfiler,
    TelemetryAggregator,
    TelemetryWriter,
    aggregate_campaign,
    enable_phase_profiling,
    read_telemetry,
    render_status,
    render_top,
    rss_bytes,
    telemetry_path,
    worker_statuses,
)


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


def make_writer(tmp_path, owner="host:1:w0", **kw):
    clock = FakeClock()
    kw.setdefault("clock", clock)
    kw.setdefault("rss_fn", lambda: 1 << 20)
    kw.setdefault("campaign", "cafe")
    writer = TelemetryWriter(telemetry_path(tmp_path, owner), owner=owner, **kw)
    return writer, clock


class TestTelemetryWriter:
    def test_meta_header_first(self, tmp_path):
        writer, _ = make_writer(tmp_path)
        records = list(read_telemetry(writer.path))
        assert records[0]["rec"] == "meta"
        assert records[0]["format"] == TELEMETRY_FORMAT
        assert records[0]["version"] == TELEMETRY_VERSION
        assert records[0]["owner"] == "host:1:w0"
        assert records[0]["campaign"] == "cafe"

    def test_owner_sanitized_in_filename(self, tmp_path):
        writer, _ = make_writer(tmp_path, owner="node:42:w1")
        assert writer.path.name == "node_42_w1.ndjson"
        assert writer.path.parent.name == "telemetry"

    def test_samples_carry_cumulative_counters_and_rates(self, tmp_path):
        writer, clock = make_writer(tmp_path)
        writer.lease_acquired()
        writer.shard_claimed()
        clock.t += 1.0
        writer.cell_done(False, events=500, wall_ns=10_000)
        clock.t += 1.0
        writer.cell_done(True)
        writer.close()
        samples = [r for r in read_telemetry(writer.path) if r["rec"] == "sample"]
        final = samples[-1]
        assert final["cells_done"] == 2
        assert final["cells_run"] == 1
        assert final["cache_hits"] == 1
        assert final["events"] == 500
        assert final["shards_claimed"] == 1
        assert final["leases_acquired"] == 1
        assert final["leases_stolen"] == 0
        assert final["final"] is True
        assert final["rss_bytes"] == 1 << 20
        # seq strictly increases
        assert [s["seq"] for s in samples] == sorted({s["seq"] for s in samples})

    def test_interval_throttles_samples(self, tmp_path):
        writer, clock = make_writer(tmp_path, interval_s=10.0)
        for _ in range(50):
            clock.t += 0.1  # 5 s of work: under the interval
            writer.cell_done(False)
        samples = [r for r in read_telemetry(writer.path) if r["rec"] == "sample"]
        assert len(samples) <= 1

    def test_shard_finished_forces_sample(self, tmp_path):
        writer, clock = make_writer(tmp_path, interval_s=1e9)
        writer.cell_done(False)
        writer.shard_finished()
        samples = [r for r in read_telemetry(writer.path) if r["rec"] == "sample"]
        assert samples and samples[-1]["shards_done"] == 1

    def test_close_is_idempotent(self, tmp_path):
        writer, _ = make_writer(tmp_path)
        writer.close()
        writer.close()
        finals = [
            r for r in read_telemetry(writer.path) if r.get("final") is True
        ]
        assert len(finals) == 1

    def test_backwards_wall_clock_never_negative_rates(self, tmp_path):
        """Regression: an NTP step / suspend moving the wall clock
        *backwards* must not produce negative (or inflated) interval
        rates — they come from the monotonic clock now."""
        wall = FakeClock(1_000_000.0)
        mono = FakeClock(500.0)
        writer, _ = make_writer(tmp_path, clock=wall, mono=mono)
        writer.cell_done(False, events=100)  # first sample (no interval yet)
        wall.t -= 3600.0  # the wall clock steps back an hour
        mono.t += 2.0     # ... while real time advances 2 s
        writer.cell_done(False, events=100)  # sampled: 2 s monotonic interval
        writer.close()
        samples = [r for r in read_telemetry(writer.path) if r["rec"] == "sample"]
        assert len(samples) >= 2
        for s in samples:
            assert s["cells_per_sec"] >= 0.0, s
            assert s["events_per_sec"] >= 0.0, s
        # The post-step sample measured the 2 s monotonic interval.
        stepped = samples[1]
        assert stepped["cells_per_sec"] == pytest.approx(1 / 2.0)
        assert stepped["events_per_sec"] == pytest.approx(100 / 2.0)

    def test_non_positive_monotonic_interval_reports_zero_rates(self, tmp_path):
        wall = FakeClock(100.0)
        mono = FakeClock(50.0)
        writer, _ = make_writer(tmp_path, clock=wall, mono=mono)
        writer.cell_done(False, events=10)
        writer.sample(force=True)
        writer.cell_done(False, events=10)
        writer.sample(force=True)  # same monotonic instant: dt == 0
        samples = [r for r in read_telemetry(writer.path) if r["rec"] == "sample"]
        assert samples[-1]["cells_per_sec"] == 0.0
        assert samples[-1]["events_per_sec"] == 0.0

    def test_samples_carry_monotonic_timestamp(self, tmp_path):
        writer, _ = make_writer(tmp_path, mono=FakeClock(7.0))
        writer.sample(force=True)
        records = list(read_telemetry(writer.path))
        assert records[0]["mono_start"] == 7.0
        samples = [r for r in records if r["rec"] == "sample"]
        assert samples[0]["mono"] == 7.0


class TestReadTelemetry:
    def test_torn_final_line_skipped(self, tmp_path):
        writer, clock = make_writer(tmp_path)
        clock.t += 1.0
        writer.cell_done(False, events=10)
        writer.sample(force=True)
        # Simulate a SIGKILL mid-append: a truncated last line.
        with open(writer.path, "a", encoding="utf-8") as fh:
            fh.write('{"rec": "sample", "seq": 99, "cel')
        records = list(read_telemetry(writer.path))
        assert all(r.get("seq") != 99 for r in records)
        assert any(r["rec"] == "sample" for r in records)

    def test_garbage_interior_lines_skipped(self, tmp_path):
        path = tmp_path / "t.ndjson"
        meta = json.dumps(
            {"rec": "meta", "format": TELEMETRY_FORMAT,
             "version": TELEMETRY_VERSION, "owner": "w", "start": 1.0}
        )
        sample = json.dumps({"rec": "sample", "seq": 0, "wall": 2.0})
        path.write_text(meta + "\nnot json at all\n" + sample + "\n")
        records = list(read_telemetry(path))
        assert len(records) == 2

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(read_telemetry(tmp_path / "absent.ndjson")) == []

    def test_foreign_format_rejected_wholesale(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text(
            json.dumps({"rec": "meta", "format": "other", "version": 1})
            + "\n"
            + json.dumps({"rec": "sample", "seq": 0})
            + "\n"
        )
        assert list(read_telemetry(path)) == []


class TestAggregatorDeterminism:
    def _populate(self, tmp_path):
        for i, owner in enumerate(["host:1:w0", "host:1:w1", "host:2:w0"]):
            writer, clock = make_writer(tmp_path, owner=owner)
            writer.lease_acquired(stolen=i == 2)
            writer.shard_claimed()
            for j in range(3):
                clock.t += 1.0
                writer.cell_done(j == 0, events=100 * (i + 1))
            writer.shard_finished()
            writer.close()

    def test_merge_is_byte_identical_regardless_of_order(self, tmp_path):
        self._populate(tmp_path)
        from repro.obs.telemetry import iter_telemetry_files

        files = iter_telemetry_files(tmp_path)
        assert len(files) == 3

        fwd = TelemetryAggregator()
        for f in files:
            fwd.add_file(f)
        rev = TelemetryAggregator()
        for f in reversed(files):
            rev.add_file(f)
        dup = TelemetryAggregator()
        for f in list(files) + list(files):  # double-read: dedup on (owner, seq)
            dup.add_file(f)
        assert fwd.to_json() == rev.to_json() == dup.to_json()

    def test_totals_sum_workers(self, tmp_path):
        self._populate(tmp_path)
        agg = aggregate_campaign(tmp_path)
        assert agg["totals"]["cells_done"] == 9
        assert agg["totals"]["cache_hits"] == 3
        assert agg["totals"]["events"] == 3 * (100 + 200 + 300)
        assert agg["totals"]["leases_stolen"] == 1
        assert agg["totals"]["shards_done"] == 3
        assert set(agg["workers"]) == {"host:1:w0", "host:1:w1", "host:2:w0"}
        assert agg["campaign"] == "cafe"

    def test_empty_campaign_aggregates_cleanly(self, tmp_path):
        agg = aggregate_campaign(tmp_path)
        assert agg["workers"] == {}
        assert agg["totals"]["cells_done"] == 0


class TestWorkerStatuses:
    def test_states_from_files_alone(self, tmp_path):
        done, _ = make_writer(tmp_path, owner="w:done")
        done.cell_done(False)
        done.close()
        live, live_clock = make_writer(tmp_path, owner="w:live")
        live_clock.t = 100.0
        live.cell_done(False)
        live.sample(force=True)
        stale, stale_clock = make_writer(tmp_path, owner="w:stale")
        stale_clock.t = 50.0
        stale.cell_done(False)
        stale.sample(force=True, now=50.0)
        states = {
            s.owner: s.state
            for s in worker_statuses(tmp_path, ttl=15.0, now=101.0)
        }
        assert states["w:done"] == "done"
        assert states["w:live"] == "live"
        assert states["w:stale"] == "stale"

    def test_render_top_handles_empty_dir(self, tmp_path):
        out = render_top(tmp_path)
        assert "no telemetry streams" in out


class TestPhaseProfiler:
    def test_disabled_by_default(self):
        assert PhaseProfiler().enabled is False

    def test_add_and_snapshot(self):
        prof = PhaseProfiler()
        prof.add("dispatch", count=10, ns=500, samples=2)
        prof.add("dispatch", count=5)
        snap = prof.snapshot()
        assert snap["dispatch"] == {"count": 15, "sampled_ns": 500, "samples": 2}
        for p in PHASES:
            assert p in snap
        prof.reset()
        assert prof.snapshot()["dispatch"]["count"] == 0

    def test_enable_phase_profiling_toggles_global(self):
        prof = enable_phase_profiling(True)
        try:
            assert prof.enabled is True
        finally:
            enable_phase_profiling(False)
        assert prof.enabled is False

    def test_kernels_report_phases_when_enabled(self):
        from repro.experiments.runner import run_overload_experiment
        from repro.obs.telemetry import PHASE_PROFILER
        from repro.runtime.spec import MonitorSpec
        from repro.sim.kernel import KernelConfig
        from repro.workload.generator import generate_taskset
        from repro.workload.scenarios import SHORT

        ts = generate_taskset(2015)
        enable_phase_profiling(True)
        try:
            for backend in ("reference", "soa"):
                PHASE_PROFILER.reset()
                run_overload_experiment(
                    ts, SHORT, MonitorSpec("simple", 0.6), horizon=2.0,
                    config=KernelConfig(backend=backend),
                )
                snap = PHASE_PROFILER.snapshot()
                assert snap["engine_pop"]["count"] > 0, backend
                assert snap["dispatch"]["count"] > 0, backend
        finally:
            enable_phase_profiling(False)
            PHASE_PROFILER.reset()

    def test_soa_dispatch_count_can_lag_events(self):
        """The soa dirty-flag skip makes dispatches <= events."""
        from repro.experiments.runner import run_overload_experiment
        from repro.obs.telemetry import PHASE_PROFILER
        from repro.runtime.spec import MonitorSpec
        from repro.sim.kernel import KernelConfig
        from repro.workload.generator import generate_taskset
        from repro.workload.scenarios import SHORT

        ts = generate_taskset(2015)
        enable_phase_profiling(True)
        try:
            PHASE_PROFILER.reset()
            run_overload_experiment(
                ts, SHORT, MonitorSpec("simple", 0.6), horizon=2.0,
                config=KernelConfig(backend="soa"),
            )
            snap = PHASE_PROFILER.snapshot()
            assert snap["dispatch"]["count"] <= snap["engine_pop"]["count"]
        finally:
            enable_phase_profiling(False)
            PHASE_PROFILER.reset()

    def test_profiling_does_not_change_results(self):
        from repro.experiments.runner import run_overload_experiment
        from repro.obs.telemetry import PHASE_PROFILER
        from repro.runtime.spec import MonitorSpec
        from repro.sim.kernel import KernelConfig
        from repro.workload.generator import generate_taskset
        from repro.workload.scenarios import SHORT

        ts = generate_taskset(7)
        for backend in ("reference", "soa"):
            config = KernelConfig(backend=backend)
            off = run_overload_experiment(
                ts, SHORT, MonitorSpec("simple", 0.6), horizon=2.0, config=config
            )
            enable_phase_profiling(True)
            try:
                on = run_overload_experiment(
                    ts, SHORT, MonitorSpec("simple", 0.6), horizon=2.0,
                    config=config,
                )
            finally:
                enable_phase_profiling(False)
                PHASE_PROFILER.reset()
            assert on == off, backend


class TestRssBytes:
    def test_returns_nonnegative_int(self):
        rss = rss_bytes()
        assert isinstance(rss, int)
        assert rss >= 0


class TestRenderStatus:
    def test_status_needs_a_campaign_manifest(self, tmp_path):
        # render_status reads shard state; without a campaign manifest the
        # shard reader raises — callers (the CLI) filter to campaign dirs.
        with pytest.raises(Exception):
            render_status(tmp_path)
