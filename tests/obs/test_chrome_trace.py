"""Chrome trace conversion, checked against a real Fig. 2 schedule."""

import json

import pytest

from repro.obs.chrome_trace import (
    PID_CPUS,
    PID_EVENTS,
    chrome_trace_events,
    chrome_trace_from_jsonl,
    write_chrome_trace,
)
from repro.obs.tracer import EventName, JsonlTracer, read_trace

from tests.obs.test_tracer import run_fig2


@pytest.fixture(scope="module")
def fig2_trace_path(tmp_path_factory):
    """A JSONL trace of the Fig. 2(c) recovery schedule, plus its counts."""
    path = tmp_path_factory.mktemp("traces") / "fig2.jsonl"
    tracer = JsonlTracer(path, meta={"scenario": "FIG2"})
    run_fig2(tracer=tracer)
    tracer.close()
    return path, tracer.counts


class TestChromeConversion:
    def test_exec_intervals_become_complete_events(self, fig2_trace_path):
        path, counts = fig2_trace_path
        events = chrome_trace_events(read_trace(path))
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == counts[EventName.EXEC_INTERVAL]
        assert all(e["pid"] == PID_CPUS for e in xs)
        assert {e["tid"] for e in xs} == {0, 1}  # the 2 CPUs of the example
        assert all(e["dur"] > 0 for e in xs)

    def test_speed_changes_become_counters(self, fig2_trace_path):
        path, counts = fig2_trace_path
        events = chrome_trace_events(read_trace(path))
        cs = [e for e in events if e["ph"] == "C"]
        assert len(cs) == counts[EventName.SPEED_CHANGE]
        speeds = [e["args"]["speed"] for e in cs]
        assert 0.5 in speeds  # the recovery slowdown
        assert speeds[-1] == 1.0  # restoration

    def test_recovery_episode_becomes_async_slice(self, fig2_trace_path):
        path, counts = fig2_trace_path
        events = chrome_trace_events(read_trace(path))
        opens = [e for e in events if e["ph"] == "b"]
        closes = [e for e in events if e["ph"] == "e"]
        assert len(opens) == counts[EventName.RECOVERY_OPEN] == 1
        assert len(closes) == counts[EventName.RECOVERY_CLOSE] == 1
        assert opens[0]["id"] == closes[0]["id"]
        assert opens[0]["ts"] < closes[0]["ts"]

    def test_instants_for_releases_and_completions(self, fig2_trace_path):
        path, counts = fig2_trace_path
        events = chrome_trace_events(read_trace(path))
        instants = [e for e in events if e["ph"] == "i" and e["cat"] == "job"]
        assert len(instants) == (
            counts[EventName.JOB_RELEASE] + counts[EventName.JOB_COMPLETE]
        )
        assert all(e["pid"] == PID_EVENTS for e in instants)

    def test_time_scale(self, fig2_trace_path):
        path, _ = fig2_trace_path
        us = chrome_trace_events(read_trace(path), time_scale=1e6)
        ms = chrome_trace_events(read_trace(path), time_scale=1e3)
        x_us = [e for e in us if e["ph"] == "X"]
        x_ms = [e for e in ms if e["ph"] == "X"]
        assert x_us[0]["ts"] == pytest.approx(x_ms[0]["ts"] * 1e3)

    def test_document_and_writer(self, fig2_trace_path, tmp_path):
        path, _ = fig2_trace_path
        doc = chrome_trace_from_jsonl(path)
        assert doc["otherData"]["format"] == "repro-trace"
        out = tmp_path / "chrome.json"
        n = write_chrome_trace(path, out)
        loaded = json.loads(out.read_text())
        assert len(loaded["traceEvents"]) == n == len(doc["traceEvents"])
