"""Tracer contract: NullTracer zero-emission, JsonlTracer schema round-trip."""

import io
import json

import pytest

from repro.experiments.examples_fig2 import figure2_taskset, overload_behavior
from repro.core.monitor import SimpleMonitor
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_FORMAT,
    TRACE_VERSION,
    EventName,
    JsonlTracer,
    NullTracer,
    read_trace,
    summarize_trace,
)
from repro.sim.kernel import KernelConfig, MC2Kernel


class RecordingTracer:
    """Test double that records every emit() it receives."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.events = []

    def emit(self, ev, t, **fields):
        self.events.append((ev, t, fields))


def run_fig2(tracer=None, recovery_speed=0.5, until=72.0):
    kernel = MC2Kernel(
        figure2_taskset(),
        behavior=overload_behavior(True),
        config=KernelConfig(record_intervals=True),
        tracer=tracer,
    )
    kernel.attach_monitor(SimpleMonitor(kernel, s=recovery_speed))
    trace = kernel.run(until)
    return kernel, trace


class TestNullTracer:
    def test_disabled_and_noop(self):
        t = NullTracer()
        assert t.enabled is False
        t.emit("job_release", 1.0, task=1)  # must not raise
        t.close()

    def test_kernel_defaults_to_shared_null_tracer(self):
        kernel = MC2Kernel(figure2_taskset())
        assert kernel.tracer is NULL_TRACER

    def test_disabled_tracer_receives_zero_events(self):
        # The zero-cost contract: producers gate on tracer.enabled, so a
        # disabled tracer sees no emissions at all during a full run.
        tracer = RecordingTracer(enabled=False)
        run_fig2(tracer=tracer)
        assert tracer.events == []

    def test_enabled_tracer_receives_events(self):
        tracer = RecordingTracer(enabled=True)
        run_fig2(tracer=tracer)
        names = {ev for ev, _, _ in tracer.events}
        assert EventName.JOB_RELEASE in names
        assert EventName.JOB_COMPLETE in names
        assert EventName.EXEC_INTERVAL in names
        assert EventName.SPEED_CHANGE in names


class TestJsonlTracer:
    def test_header_is_first_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path, meta={"scenario": "X"}) as tr:
            tr.emit(EventName.JOB_RELEASE, 1.5, task=7, job=0)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["ev"] == EventName.META
        assert header["format"] == TRACE_FORMAT
        assert header["version"] == TRACE_VERSION
        assert header["scenario"] == "X"
        assert header["seq"] == 0

    def test_schema_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as tr:
            tr.emit(EventName.JOB_RELEASE, 1.5, task=7, job=0, level="C")
            tr.emit(EventName.SPEED_CHANGE, 2.0, speed=0.5)
        records = list(read_trace(path))
        assert [r["ev"] for r in records] == [
            EventName.META, EventName.JOB_RELEASE, EventName.SPEED_CHANGE,
        ]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[1] == {
            "seq": 1, "t": 1.5, "ev": "job_release",
            "task": 7, "job": 0, "level": "C",
        }
        assert records[2]["speed"] == 0.5

    def test_counts_match_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = JsonlTracer(path)
        for _ in range(3):
            tr.emit(EventName.JOB_RELEASE, 0.0, task=1, job=0)
        tr.close()
        assert tr.counts[EventName.JOB_RELEASE] == 3
        assert tr.counts[EventName.META] == 1
        assert len(path.read_text().splitlines()) == 4

    def test_stream_sink_left_open(self):
        buf = io.StringIO()
        tr = JsonlTracer(buf)
        tr.emit(EventName.JOB_COMPLETE, 3.0, task=1, job=0)
        tr.close()
        assert not buf.closed
        assert len(buf.getvalue().splitlines()) == 2


class TestReadTrace:
    def test_rejects_missing_header(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"seq": 0, "t": 0.0, "ev": "job_release"}\n')
        with pytest.raises(ValueError, match="header"):
            list(read_trace(p))

    def test_rejects_wrong_format(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"seq": 0, "t": 0.0, "ev": "trace_meta", '
                     '"format": "other", "version": 1}\n')
        with pytest.raises(ValueError, match="format"):
            list(read_trace(p))

    def test_rejects_unknown_version(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"seq": 0, "t": 0.0, "ev": "trace_meta", '
                     f'"format": "{TRACE_FORMAT}", "version": 99}}\n')
        with pytest.raises(ValueError, match="version"):
            list(read_trace(p))

    def test_rejects_malformed_json(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"seq": 0, "t": 0.0, "ev": "trace_meta", '
                     f'"format": "{TRACE_FORMAT}", "version": 1}}\n'
                     "not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            list(read_trace(p))


class TestSummarize:
    def test_full_run_summary(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(path, meta={"scenario": "FIG2"})
        kernel, trace = run_fig2(tracer=tracer)
        tracer.close()
        s = summarize_trace(path)
        assert s.counts == tracer.counts
        assert s.events == sum(tracer.counts.values())
        assert s.meta == {"scenario": "FIG2"}
        assert s.t_min >= 0.0
        assert s.t_max <= 72.0
        assert s.tasks == 5  # 2 level-A + 3 level-C tasks
        assert s.speed_changes == trace.speed_changes
        assert "events over" in s.render()
        assert s.to_dict()["counts"] == s.counts
