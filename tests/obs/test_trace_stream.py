"""Constant-memory trace summarization over a >100k-event synthetic trace."""

import json

from repro.obs.tracer import (
    MAX_SPEED_CHANGES,
    TRACE_FORMAT,
    TRACE_VERSION,
    summarize_trace,
)

N_EVENTS = 120_000
N_SPEED_CHANGES = 5_000
N_TASKS = 16


def write_big_trace(path):
    """Write a synthetic JSONL trace directly (no kernel run needed)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {"seq": 0, "t": 0.0, "ev": "trace_meta",
                 "format": TRACE_FORMAT, "version": TRACE_VERSION,
                 "scenario": "synthetic"}
            )
            + "\n"
        )
        for i in range(N_EVENTS):
            t = i * 1e-4
            if i % (N_EVENTS // N_SPEED_CHANGES) == 0:
                rec = {"seq": i + 1, "t": t, "ev": "speed_change",
                       "speed": 1.0 + (i % 3) * 0.25}
            elif i % 2 == 0:
                rec = {"seq": i + 1, "t": t, "ev": "job_release",
                       "task": i % N_TASKS}
            else:
                rec = {"seq": i + 1, "t": t, "ev": "job_complete",
                       "task": i % N_TASKS}
            fh.write(json.dumps(rec) + "\n")


class TestBigTraceSummarize:
    def test_counts_all_retains_bounded(self, tmp_path):
        path = tmp_path / "big.jsonl"
        write_big_trace(path)
        summary = summarize_trace(path)
        assert summary.events == N_EVENTS + 1  # + meta record
        assert summary.speed_changes_total == N_SPEED_CHANGES
        # Retention is bounded regardless of how many occurred...
        assert len(summary.speed_changes) == MAX_SPEED_CHANGES
        assert MAX_SPEED_CHANGES < N_SPEED_CHANGES
        # ...and keeps the *first* ones, in order.
        assert summary.speed_changes[0] == (0.0, 1.0)
        times = [t for t, _ in summary.speed_changes]
        assert times == sorted(times)
        assert summary.tasks == N_TASKS
        assert summary.t_min == 0.0
        assert abs(summary.t_max - (N_EVENTS - 1) * 1e-4) < 1e-9

    def test_custom_cap(self, tmp_path):
        path = tmp_path / "big.jsonl"
        write_big_trace(path)
        summary = summarize_trace(path, max_speed_changes=7)
        assert len(summary.speed_changes) == 7
        assert summary.speed_changes_total == N_SPEED_CHANGES

    def test_render_notes_truncation(self, tmp_path):
        path = tmp_path / "big.jsonl"
        write_big_trace(path)
        summary = summarize_trace(path, max_speed_changes=3)
        text = summary.render()
        assert f"({N_SPEED_CHANGES} total, first 3 shown)" in text

    def test_to_dict_carries_total(self, tmp_path):
        path = tmp_path / "big.jsonl"
        write_big_trace(path)
        doc = summarize_trace(path, max_speed_changes=5).to_dict()
        assert doc["speed_changes_total"] == N_SPEED_CHANGES
        assert len(doc["speed_changes"]) == 5
