"""Metrics registry: counters, gauges, exact histogram percentiles."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram()
        h.record_many([4, 1, 3, 2])
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.samples == [4, 1, 3, 2]  # recording order preserved

    def test_percentiles_exact_interpolation(self):
        h = Histogram()
        h.record_many(range(1, 101))  # 1..100
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == 50.5
        assert h.percentile(90) == pytest.approx(90.1)

    def test_percentile_two_samples(self):
        h = Histogram()
        h.record_many([0.0, 10.0])
        assert h.percentile(50) == 5.0
        assert h.percentile(25) == 2.5

    def test_percentile_unsorted_input(self):
        h = Histogram()
        h.record_many([30, 10, 20])
        assert h.percentile(50) == 20.0
        # Recording after a percentile query keeps answers correct.
        h.record(5)
        assert h.percentile(0) == 5.0

    def test_empty_and_single(self):
        h = Histogram()
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        h.record(7)
        assert h.percentile(99) == 7.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError, match="percentile"):
            Histogram().percentile(101)

    def test_summary_keys(self):
        h = Histogram()
        h.record_many([1, 2, 3])
        doc = h.summary()
        assert doc["count"] == 3
        assert doc["p50"] == 2.0
        assert set(doc) == {"count", "sum", "mean", "min", "max", "p50", "p90", "p99"}


class TestRegistry:
    def test_get_or_create_identity(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("b") is m.gauge("b")
        assert m.histogram("c") is m.histogram("c")

    def test_names_sorted(self):
        m = MetricsRegistry()
        m.histogram("z.ns")
        m.counter("a")
        m.gauge("m")
        assert m.names() == ["a", "m", "z.ns"]

    def test_to_dict_and_json(self):
        m = MetricsRegistry()
        m.counter("kernel.events").inc(42)
        m.gauge("speed").set(0.6)
        m.histogram("cell.ns").record_many([100, 200])
        doc = json.loads(m.to_json())
        assert doc["counters"] == {"kernel.events": 42}
        assert doc["gauges"] == {"speed": 0.6}
        assert doc["histograms"]["cell.ns"]["count"] == 2
