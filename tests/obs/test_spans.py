"""SpanTimer: nesting produces dotted histogram paths."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTimer


class TestSpanTimer:
    def test_records_into_prefixed_histogram(self):
        m = MetricsRegistry()
        spans = SpanTimer(m, prefix="kernel")
        with spans.span("pick_next"):
            pass
        h = m.histogram("kernel.pick_next.ns")
        assert h.count == 1
        assert h.samples[0] >= 0

    def test_nesting_builds_dotted_paths(self):
        m = MetricsRegistry()
        spans = SpanTimer(m, prefix="x")
        with spans.span("outer"):
            assert spans.depth == 1
            with spans.span("inner"):
                assert spans.depth == 2
        assert spans.depth == 0
        assert m.histogram("x.outer.ns").count == 1
        assert m.histogram("x.outer.inner.ns").count == 1
        # The inner time is contained in the outer time.
        assert m.histogram("x.outer.ns").max >= m.histogram("x.outer.inner.ns").max

    def test_exception_still_records_and_unwinds(self):
        m = MetricsRegistry()
        spans = SpanTimer(m)
        with pytest.raises(RuntimeError):
            with spans.span("boom"):
                raise RuntimeError("x")
        assert spans.depth == 0
        assert m.histogram("span.boom.ns").count == 1

    def test_histogram_accessor(self):
        m = MetricsRegistry()
        spans = SpanTimer(m, prefix="kernel")
        with spans.span("change_speed"):
            pass
        assert spans.histogram("change_speed") is m.histogram("kernel.change_speed.ns")
        assert spans.histogram("change_speed").count == 1

    def test_repeated_spans_accumulate(self):
        m = MetricsRegistry()
        spans = SpanTimer(m)
        for _ in range(10):
            with spans.span("tick"):
                pass
        assert m.histogram("span.tick.ns").count == 10
