"""ProgressReporter: throttling, cache hit-rate, final line."""

import io

from repro.obs.progress import ProgressReporter


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make(min_interval=1.0):
    buf = io.StringIO()
    clock = FakeClock()
    return ProgressReporter(stream=buf, min_interval_s=min_interval, clock=clock), buf, clock


class TestProgressReporter:
    def test_throttles_between_lines(self):
        rep, buf, clock = make(min_interval=1.0)
        rep.begin(100)
        for _ in range(50):
            clock.t += 0.001  # 50 cells in 50 ms: at most one line
            rep.cell_done()
        assert rep.lines_emitted == 1

    def test_final_line_always_emitted(self):
        rep, buf, clock = make(min_interval=1000.0)
        rep.begin(3)
        rep.cell_done()  # first one emits (last_emit starts at -inf)
        rep.cell_done()
        rep.cell_done()  # done == total -> forced final line
        lines = buf.getvalue().splitlines()
        assert lines[-1].startswith("[sweep] 3/3 cells (100%)")
        rep.finish()  # already final: no extra line
        assert buf.getvalue().splitlines() == lines

    def test_finish_emits_when_incomplete(self):
        rep, buf, clock = make(min_interval=1000.0)
        rep.begin(10)
        rep.finish()
        assert "0/10" in buf.getvalue()

    def test_cache_hit_rate(self):
        rep, buf, clock = make()
        rep.begin(4)
        rep.cell_done(cached=True)
        rep.cell_done(cached=True)
        rep.cell_done(cached=True)
        rep.cell_done(cached=False)
        last = buf.getvalue().splitlines()[-1]
        assert "cache 3 (75%)" in last

    def test_eta_in_intermediate_lines(self):
        rep, buf, clock = make(min_interval=0.0)
        rep.begin(4)
        clock.t = 1.0
        rep.cell_done()  # 1 cell/s -> 3 remaining -> eta 3.0s
        assert "eta 3.0s" in buf.getvalue().splitlines()[-1]
        clock.t = 4.0
        for _ in range(3):
            rep.cell_done()
        assert "eta" not in buf.getvalue().splitlines()[-1]
