"""ProgressReporter: throttling, cache hit-rate, final line."""

import io

from repro.obs.progress import ProgressReporter


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make(min_interval=1.0):
    buf = io.StringIO()
    clock = FakeClock()
    return ProgressReporter(stream=buf, min_interval_s=min_interval, clock=clock), buf, clock


class TestProgressReporter:
    def test_throttles_between_lines(self):
        rep, buf, clock = make(min_interval=1.0)
        rep.begin(100)
        for _ in range(50):
            clock.t += 0.001  # 50 cells in 50 ms: at most one line
            rep.cell_done()
        assert rep.lines_emitted == 1

    def test_final_line_always_emitted(self):
        rep, buf, clock = make(min_interval=1000.0)
        rep.begin(3)
        rep.cell_done()  # first one emits (last_emit starts at -inf)
        rep.cell_done()
        rep.cell_done()  # done == total -> forced final line
        lines = buf.getvalue().splitlines()
        assert lines[-1].startswith("[sweep] 3/3 cells (100%)")
        rep.finish()  # already final: no extra line
        assert buf.getvalue().splitlines() == lines

    def test_finish_emits_when_incomplete(self):
        rep, buf, clock = make(min_interval=1000.0)
        rep.begin(10)
        rep.finish()
        assert "0/10" in buf.getvalue()

    def test_cache_hit_rate(self):
        rep, buf, clock = make()
        rep.begin(4)
        rep.cell_done(cached=True)
        rep.cell_done(cached=True)
        rep.cell_done(cached=True)
        rep.cell_done(cached=False)
        last = buf.getvalue().splitlines()[-1]
        assert "cache 3 (75%)" in last

    def test_eta_dashes_when_rate_is_zero(self):
        """Cells completing at the same clock instant give a zero-span
        window; the ETA must render ``--:--``, never a raw ``inf``."""
        rep, buf, clock = make(min_interval=0.0)
        rep.begin(4)
        rep.cell_done()  # clock never advanced -> rate 0
        last = buf.getvalue().splitlines()[-1]
        assert "eta --:--" in last
        assert "inf" not in buf.getvalue()

    def test_eta_recovers_after_zero_rate_start(self):
        rep, buf, clock = make(min_interval=0.0)
        rep.begin(4)
        rep.cell_done()  # zero-span -> --:--
        clock.t = 2.0
        rep.cell_done()  # 2 cells in 2 s -> 2 remaining -> eta 2.0s
        assert "eta 2.0s" in buf.getvalue().splitlines()[-1]

    def test_eta_in_intermediate_lines(self):
        rep, buf, clock = make(min_interval=0.0)
        rep.begin(4)
        clock.t = 1.0
        rep.cell_done()  # 1 cell/s -> 3 remaining -> eta 3.0s
        assert "eta 3.0s" in buf.getvalue().splitlines()[-1]
        clock.t = 4.0
        for _ in range(3):
            rep.cell_done()
        assert "eta" not in buf.getvalue().splitlines()[-1]


class TestWindowedRate:
    def test_rate_tracks_recent_window_not_lifetime(self):
        rep, buf, clock = make(min_interval=0.0)
        rep.begin(1000)
        # Fast burst: 100 cells in 1 s...
        for _ in range(100):
            clock.t += 0.01
            rep.cell_done()
        # ...then a slow regime: 1 cell every 2 s for 40 s.  The 20 s
        # sliding window forgets the burst entirely.
        for _ in range(20):
            clock.t += 2.0
            rep.cell_done()
        rate = rep.rate(clock.t)
        assert abs(rate - 0.5) < 0.1, rate
        # Cumulative average would claim ~2.9 cells/s; the ETA on the
        # last line must reflect the windowed rate (880 left at 0.5/s).
        last = buf.getvalue().splitlines()[-1]
        assert "eta" in last
        eta = float(last.split("eta ")[1].rstrip("s"))
        assert 1500 < eta < 2100, eta

    def test_rate_speedup_detected(self):
        rep, buf, clock = make(min_interval=0.0)
        rep.begin(1000)
        for _ in range(10):
            clock.t += 2.0  # slow start: 0.5 cells/s
            rep.cell_done()
        for _ in range(100):
            clock.t += 0.1  # speedup: 10 cells/s
            rep.cell_done()
        assert rep.rate(clock.t) > 5.0

    def test_window_is_bounded(self):
        rep, buf, clock = make(min_interval=1000.0)
        rep.begin(100_000)
        for _ in range(10_000):
            clock.t += 0.001
            rep.cell_done()
        from repro.obs.progress import RATE_WINDOW_SAMPLES

        assert len(rep._window) <= RATE_WINDOW_SAMPLES

    def test_rate_zero_before_any_cells(self):
        rep, buf, clock = make()
        rep.begin(10)
        assert rep.rate(clock.t) == 0.0


class TestBatchSlices:
    def test_slice_count_appears_in_lines(self):
        rep, buf, clock = make(min_interval=0.0)
        rep.begin(8)
        for _ in range(4):
            clock.t += 1.0
            rep.cell_done()
        rep.batch_slice()
        clock.t += 1.0
        rep.cell_done()
        assert "slice 1" in buf.getvalue().splitlines()[-1]
        rep.batch_slice()
        clock.t += 1.0
        rep.cell_done()
        assert "slice 2" in buf.getvalue().splitlines()[-1]

    def test_no_slice_marker_without_batching(self):
        rep, buf, clock = make(min_interval=0.0)
        rep.begin(2)
        clock.t += 1.0
        rep.cell_done()
        assert "slice" not in buf.getvalue()

    def test_begin_resets_slices(self):
        rep, buf, clock = make(min_interval=0.0)
        rep.begin(2)
        rep.batch_slice()
        assert rep.batch_slices == 1
        rep.begin(2)
        assert rep.batch_slices == 0
