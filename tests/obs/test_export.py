"""Prometheus textfile + JSON snapshot exporters over telemetry aggregates."""

import json

from repro.obs.export import (
    prometheus_escape,
    prometheus_lines,
    write_json_snapshot,
    write_prometheus_textfile,
)
from repro.obs.telemetry import TelemetryWriter, aggregate_campaign, telemetry_path


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


def make_aggregate(tmp_path):
    clock = FakeClock()
    writer = TelemetryWriter(
        telemetry_path(tmp_path, "host:1:w0"), owner="host:1:w0",
        campaign="deadbeef", backend="soa", clock=clock,
        rss_fn=lambda: 2 << 20,
    )
    writer.lease_acquired()
    writer.shard_claimed()
    for j in range(4):
        clock.t += 0.5
        writer.cell_done(j % 2 == 0, events=250)
    writer.shard_finished()
    writer.close()
    return aggregate_campaign(tmp_path)


def parse_prometheus(text):
    """Minimal textfile-format parser: {(name, labelstring): value}."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        head, value = line.rsplit(" ", 1)
        if "{" in head:
            name, labels = head.split("{", 1)
            labels = "{" + labels
        else:
            name, labels = head, ""
        out[(name, labels)] = float(value)
    return out


class TestPrometheusLines:
    def test_escape(self):
        assert prometheus_escape('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_campaign_and_worker_series(self, tmp_path):
        agg = make_aggregate(tmp_path)
        text = "\n".join(prometheus_lines(agg))
        metrics = parse_prometheus(text)
        campaign = '{campaign="deadbeef"}'
        assert metrics[("repro_campaign_cells_done", campaign)] == 4.0
        assert metrics[("repro_campaign_cache_hits", campaign)] == 2.0
        assert metrics[("repro_campaign_events", campaign)] == 1000.0
        worker = '{campaign="deadbeef",worker="host:1:w0"}'
        assert metrics[("repro_worker_cells_done", worker)] == 4.0
        assert metrics[("repro_worker_rss_bytes", worker)] == float(2 << 20)

    def test_every_metric_has_help_and_type(self, tmp_path):
        agg = make_aggregate(tmp_path)
        lines = prometheus_lines(agg)
        names = {
            line.split("{", 1)[0].split(" ", 1)[0]
            for line in lines
            if line and not line.startswith("#")
        }
        helped = {l.split()[2] for l in lines if l.startswith("# HELP")}
        typed = {l.split()[2] for l in lines if l.startswith("# TYPE")}
        assert names <= helped
        assert names <= typed

    def test_phase_series_present_when_profiled(self, tmp_path):
        agg = make_aggregate(tmp_path)
        # Inject phase counters the way a profiled worker reports them.
        agg["phases"] = {
            "dispatch": {"count": 10, "sampled_ns": 400, "samples": 2},
            "engine_pop": {"count": 12, "sampled_ns": 0, "samples": 0},
            "monitor": {"count": 0, "sampled_ns": 0, "samples": 0},
            "timer_rearm": {"count": 0, "sampled_ns": 0, "samples": 0},
        }
        metrics = parse_prometheus("\n".join(prometheus_lines(agg)))
        phase = '{campaign="deadbeef",phase="dispatch"}'
        assert metrics[("repro_phase_count", phase)] == 10.0
        assert metrics[("repro_phase_sampled_ns", phase)] == 400.0
        assert metrics[("repro_phase_samples", phase)] == 2.0


class TestFileExporters:
    def test_textfile_roundtrip_and_determinism(self, tmp_path):
        agg = make_aggregate(tmp_path)
        out1 = tmp_path / "a.prom"
        out2 = tmp_path / "b.prom"
        write_prometheus_textfile(agg, out1)
        write_prometheus_textfile(agg, out2)
        assert out1.read_bytes() == out2.read_bytes()
        assert out1.read_text().endswith("\n")
        parse_prometheus(out1.read_text())  # must parse cleanly

    def test_json_snapshot_is_canonical(self, tmp_path):
        agg = make_aggregate(tmp_path)
        out1 = tmp_path / "a.json"
        out2 = tmp_path / "b.json"
        write_json_snapshot(agg, out1)
        write_json_snapshot(agg, out2)
        assert out1.read_bytes() == out2.read_bytes()
        doc = json.loads(out1.read_text())
        assert doc["format"] == "repro-telemetry-aggregate"
        assert doc["totals"]["cells_done"] == 4
