"""Observability is observation-only, and traces are exact.

The two acceptance properties of the obs layer:

* tracing/metrics never change a result (same ``RunResult``, same spec
  key, same canonical JSON with or without an ``ObsSpec``);
* a JSONL trace's event counts match the run's :class:`Trace` records
  exactly (releases = job records, completions = completed records,
  intervals = interval records, speed changes = speed-change records).
"""

import json

from repro.io.runspec_json import runspec_from_dict, runspec_to_dict, spec_key
from repro.obs.tracer import EventName, JsonlTracer
from repro.runtime.executor import make_executor, run_spec
from repro.runtime.spec import MonitorSpec, ObsSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.workload.scenarios import SHORT

from tests.obs.test_tracer import run_fig2


def short_spec(**kw):
    return RunSpec(
        taskset=TaskSetSpec.generated(2015),
        scenario=ScenarioSpec.from_scenario(SHORT),
        monitor=MonitorSpec("simple", 0.6),
        **kw,
    )


class TestEventCountsMatchTrace:
    def test_counts_match_trace_records_exactly(self, tmp_path):
        path = tmp_path / "fig2.jsonl"
        tracer = JsonlTracer(path)
        kernel, trace = run_fig2(tracer=tracer)
        tracer.close()
        counts = tracer.counts
        assert counts[EventName.JOB_RELEASE] == len(trace.jobs)
        assert counts[EventName.JOB_COMPLETE] == len(trace.completed())
        assert counts[EventName.EXEC_INTERVAL] == len(trace.intervals)
        assert counts[EventName.SPEED_CHANGE] == len(trace.speed_changes)
        # Monitor-side events line up with the monitor's own accounting.
        assert counts[EventName.MONITOR_MISS] == kernel.monitor.miss_count
        assert counts[EventName.RECOVERY_OPEN] == len(kernel.monitor.episodes)


class TestResultNeutrality:
    def test_tracing_does_not_change_run_result(self, tmp_path):
        plain = run_spec(short_spec())
        traced = run_spec(short_spec(obs=ObsSpec(trace_dir=str(tmp_path))))
        assert traced == plain
        assert len(list(tmp_path.glob("run-*.jsonl"))) == 1

    def test_obs_does_not_change_spec_key(self, tmp_path):
        plain = short_spec()
        traced = short_spec(obs=ObsSpec(trace_dir=str(tmp_path)))
        assert spec_key(traced) == spec_key(plain)
        assert traced.canonical_json() == plain.canonical_json()

    def test_default_obs_keeps_document_unchanged(self):
        doc = runspec_to_dict(short_spec())
        assert "obs" not in doc

    def test_non_default_obs_round_trips(self):
        spec = short_spec(obs=ObsSpec(trace_dir="traces", trace_name="x.jsonl"))
        doc = runspec_to_dict(spec)
        assert doc["obs"] == {"trace_dir": "traces", "trace_name": "x.jsonl"}
        assert runspec_from_dict(json.loads(json.dumps(doc))) == spec


class TestExecutorObservability:
    def test_sweep_report_and_cache_interaction(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        trace_dir = tmp_path / "traces"
        spec = short_spec(obs=ObsSpec(trace_dir=str(trace_dir)))

        ex = make_executor(jobs=1, cache_dir=cache_dir)
        [first] = ex.run([spec])
        assert ex.report.cells_total == 1
        assert ex.report.cache_hits == 0
        cell = ex.report.cells[0]
        assert not cell.cached
        assert cell.wall_ns > 0
        assert cell.sim_end == first.sim_end
        assert cell.events == first.events
        assert cell.key == spec.key()[:12]
        assert ex.metrics.histogram("executor.cell.ns").count == 1
        assert len(list(trace_dir.glob("run-*.jsonl"))) == 1

        # Re-run: served from cache (wall 0) and no new trace is written.
        for f in trace_dir.glob("run-*.jsonl"):
            f.unlink()
        ex2 = make_executor(jobs=1, cache_dir=cache_dir)
        [again] = ex2.run([spec])
        assert again == first
        assert ex2.report.cache_hits == 1
        assert ex2.report.cells[0].cached
        assert ex2.report.cells[0].wall_ns == 0
        assert list(trace_dir.glob("run-*.jsonl")) == []

    def test_report_json_document(self, tmp_path):
        ex = make_executor(jobs=1)
        ex.run([short_spec()])
        doc = json.loads(ex.report.to_json())
        assert doc["format"] == "repro-sweep-report"
        assert doc["summary"]["cells_total"] == 1
        assert doc["summary"]["truncated_cells"] == 0
        assert doc["cells"][0]["monitor"] == "SIMPLE(s=0.6)"
