"""Tests for SVG schedule rendering (repro.viz)."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.examples_fig2 import figure2_taskset, run_example
from repro.sim.trace import Trace
from repro.viz import PALETTE, svg_gantt

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def fig2c_run():
    return run_example(figure2_taskset(), overloaded=True, recovery_speed=0.5,
                       until=48.0)


class TestSvgGantt:
    def test_output_is_well_formed_xml(self, fig2c_run):
        ts = figure2_taskset()
        svg = svg_gantt(fig2c_run.trace, list(ts), t_end=48.0, title="Fig 2(c)")
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_rect_per_visible_interval(self, fig2c_run):
        ts = figure2_taskset()
        svg = svg_gantt(fig2c_run.trace, list(ts), t_end=48.0)
        root = ET.fromstring(svg)
        rects = [el for el in root.iter(f"{SVG_NS}rect")
                 if el.get("class") == "exec"]
        visible = [iv for iv in fig2c_run.trace.intervals if iv.start < 48.0]
        assert len(rects) == len(visible)

    def test_release_markers_for_level_c(self, fig2c_run):
        ts = figure2_taskset()
        svg = svg_gantt(fig2c_run.trace, list(ts), t_end=48.0)
        root = ET.fromstring(svg)
        markers = [el for el in root.iter(f"{SVG_NS}path")
                   if el.get("class") == "release"]
        c_releases = [r for r in fig2c_run.trace.jobs
                      if r.level.name == "C" and r.release < 48.0]
        assert len(markers) == len(c_releases)

    def test_markers_can_be_disabled(self, fig2c_run):
        ts = figure2_taskset()
        svg = svg_gantt(fig2c_run.trace, list(ts), t_end=48.0, mark_level_c=False)
        assert 'class="release"' not in svg

    def test_speed_profile_segments(self, fig2c_run):
        """Fig. 2(c) has s=1, then 0.5, then 1: three speed segments."""
        ts = figure2_taskset()
        svg = svg_gantt(fig2c_run.trace, list(ts), t_end=48.0)
        root = ET.fromstring(svg)
        segs = [el for el in root.iter(f"{SVG_NS}line")
                if el.get("class") == "speed"]
        assert len(segs) == 3
        assert "s=0.5" in svg

    def test_requires_interval_recording(self):
        with pytest.raises(ValueError, match="disabled"):
            svg_gantt(Trace(), [], t_end=10.0)

    def test_bad_t_end(self, fig2c_run):
        with pytest.raises(ValueError, match="t_end"):
            svg_gantt(fig2c_run.trace, [], t_end=0.0)

    def test_title_escaped(self, fig2c_run):
        ts = figure2_taskset()
        svg = svg_gantt(fig2c_run.trace, list(ts), t_end=48.0,
                        title="<overload> & recovery")
        ET.fromstring(svg)  # would raise on unescaped '<'
        assert "&lt;overload&gt;" in svg

    def test_palette_is_valid_hex(self):
        assert all(c.startswith("#") and len(c) == 7 for c in PALETTE)
