"""Integration: sporadic (jittered) releases — the general SVO model.

The paper's experiments use periodic releases, but the SVO model is
sporadic (eq. 5 is an inequality).  These tests exercise the kernel's
``release_delay`` hook: random extra separations must (a) keep every
schedule invariant intact, (b) never cause tolerance misses (load only
drops), and (c) still allow recovery from overload.
"""

import numpy as np
import pytest

from repro.core.monitor import SimpleMonitor
from repro.core.virtual_time import SpeedProfile
from repro.experiments.runner import MonitorSpec, run_overload_experiment
from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel as L
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import SHORT


def jitter(seed: int, scale: float):
    rng = np.random.default_rng(seed)

    def delay(task, k):
        return float(rng.uniform(0.0, scale * task.period))

    return delay


@pytest.fixture(scope="module")
def ts():
    return generate_taskset(seed=13, params=GeneratorParams(m=2))


def test_sporadic_separations_respect_eq5(ts):
    kernel = MC2Kernel(
        ts,
        behavior=ConstantBehavior(L.C),
        config=KernelConfig(release_delay=jitter(0, 0.3)),
    )
    trace = kernel.run(3.0)
    profile = SpeedProfile.from_segments(0.0, trace.speed_changes)
    for t in ts.level(L.C):
        recs = trace.jobs_of(t.task_id)
        for a, b in zip(recs, recs[1:]):
            sep = profile.v(b.release) - profile.v(a.release)
            assert sep >= t.period - 1e-6


def test_sporadic_slack_never_triggers_recovery(ts):
    kernel = MC2Kernel(
        ts,
        behavior=ConstantBehavior(L.C),
        config=KernelConfig(release_delay=jitter(1, 0.5)),
    )
    mon = SimpleMonitor(kernel, s=0.5)
    kernel.attach_monitor(mon)
    kernel.run(3.0)
    assert mon.miss_count == 0
    assert mon.episodes == []


def test_level_a_unaffected_by_jitter(ts):
    kernel = MC2Kernel(
        ts,
        behavior=ConstantBehavior(L.C),
        config=KernelConfig(release_delay=jitter(2, 0.5)),
    )
    trace = kernel.run(1.0)
    for t in ts.level(L.A):
        recs = trace.jobs_of(t.task_id)
        for a, b in zip(recs, recs[1:]):
            assert b.release - a.release == pytest.approx(t.period)


def test_recovery_still_works_with_jitter(ts):
    cfg = KernelConfig(release_delay=jitter(3, 0.2))
    r = run_overload_experiment(ts, SHORT, MonitorSpec("simple", 0.6), config=cfg)
    assert not r.truncated
    assert r.episodes >= 1
    assert r.dissipation >= 0.0


def test_jitter_reduces_load_and_responses(ts):
    def run(delay):
        kernel = MC2Kernel(
            ts, behavior=ConstantBehavior(L.C),
            config=KernelConfig(release_delay=delay),
        )
        return kernel.run(3.0)

    periodic = run(None)
    jittered = run(jitter(4, 0.5))
    assert len(jittered.completed(L.C)) < len(periodic.completed(L.C))
