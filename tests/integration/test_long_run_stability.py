"""Integration: long-horizon stability and numeric robustness.

The event-driven kernel must stay healthy over long simulated horizons
(no unbounded job pools, no float-drift-induced invariant violations)
and with awkward non-grid task parameters.
"""

import math

import pytest

from repro.core.monitor import SimpleMonitor
from repro.core.virtual_time import SpeedProfile
from repro.model.behavior import ConstantBehavior, StochasticBehavior
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.kernel import KernelConfig, MC2Kernel
from tests.conftest import make_c_task


def awkward_tasks():
    """Periods/PWCETs chosen to be float-unfriendly (no common grid)."""
    return [
        Task(task_id=0, level=L.C, period=math.pi, pwcets={L.C: 0.7},
             relative_pp=2.1, tolerance=5.0),
        Task(task_id=1, level=L.C, period=math.e, pwcets={L.C: 1.1},
             relative_pp=1.9, tolerance=5.0),
        Task(task_id=2, level=L.C, period=math.sqrt(7), pwcets={L.C: 0.9},
             relative_pp=2.0, tolerance=5.0),
    ]


def test_long_run_pool_stays_bounded():
    """A schedulable system never accumulates incomplete jobs."""
    ts = TaskSet([make_c_task(i, 2.0 + i, 0.5, y=2.0, tolerance=5.0)
                  for i in range(4)], m=2)
    kernel = MC2Kernel(ts, behavior=ConstantBehavior())
    kernel.start()
    for horizon in (100.0, 300.0, 600.0):
        kernel.run_until(horizon)
        assert len(kernel.jobs_c) <= len(ts) + 1
    kernel.finish()
    assert kernel.engine.events_processed > 1500


def test_awkward_float_parameters_keep_invariants():
    ts = TaskSet(awkward_tasks(), m=2)
    kernel = MC2Kernel(ts, behavior=ConstantBehavior(),
                       config=KernelConfig(record_intervals=True))
    trace = kernel.run(200.0)
    # Executed time equals demand for completed jobs despite the
    # non-grid arithmetic.
    executed = {}
    for iv in trace.intervals:
        executed[(iv.task_id, iv.job_index)] = (
            executed.get((iv.task_id, iv.job_index), 0.0) + iv.length
        )
    for rec in trace.completed():
        assert executed[(rec.task_id, rec.index)] == pytest.approx(
            rec.exec_time, abs=1e-6
        )
    # Releases respect eq. 5 at float precision.
    for t in ts:
        recs = trace.jobs_of(t.task_id)
        for a, b in zip(recs, recs[1:]):
            assert b.release - a.release >= t.period - 1e-6


def test_long_stochastic_run_with_monitor():
    """Hours of stochastic load with occasional overruns: the monitor
    enters and leaves recovery repeatedly and the clock always returns
    to speed 1."""
    ts = TaskSet(
        [make_c_task(i, 2.0 + 0.5 * i, 0.8 + 0.1 * i, y=2.0, tolerance=0.3)
         for i in range(3)],
        m=2,
    )
    kernel = MC2Kernel(
        ts,
        behavior=StochasticBehavior(lo=0.4, hi=1.0, overrun_prob=0.05,
                                    overrun_factor=4.0, seed=11),
    )
    mon = SimpleMonitor(kernel, s=0.5)
    kernel.attach_monitor(mon)
    kernel.run(600.0)
    closed = [e for e in mon.episodes if e.end is not None]
    assert len(closed) >= 3, "stochastic overruns should trigger recovery repeatedly"
    # Every closed episode restored speed 1; speed changes alternate sanely.
    profile = SpeedProfile.from_segments(0.0, kernel.trace.speed_changes)
    assert profile.changes[-1].speed in (1.0, 0.5)
    if not mon.recovery_mode:
        assert kernel.clock.is_normal_speed


def test_virtual_time_consistency_over_many_speed_changes():
    """Hundreds of speed changes: clock state matches the full profile."""
    ts = TaskSet([make_c_task(0, 2.0, 0.5, y=1.5, tolerance=5.0)], m=1)
    kernel = MC2Kernel(ts, behavior=ConstantBehavior())
    kernel.start()
    t = 1.0
    speeds = [0.5, 0.25, 0.75, 1.0]
    for i in range(200):
        kernel.run_until(t)
        kernel.change_speed(speeds[i % len(speeds)], kernel.engine.now)
        t += 1.0
    kernel.run_until(t + 5.0)
    kernel.finish()
    clock = kernel.clock
    profile = clock.profile()
    now = kernel.engine.now
    assert clock.act_to_virt(now) == pytest.approx(profile.v(now), rel=1e-9)
    assert len(profile.changes) == 201
