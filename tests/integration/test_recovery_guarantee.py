"""Integration: the system always returns to normal behavior.

Sec. 3: "our technique creates extra slack both in a system-wide sense
and in a per-task sense ... Therefore, the system eventually returns to
normal behavior."  After any of the paper's transient overloads, every
monitor configuration must detect an idle normal instant, restore the
clock to speed 1, and exit recovery within the horizon.
"""

import pytest

from repro.experiments.runner import MonitorSpec, run_overload_experiment
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import DOUBLE, LONG, SHORT, standard_scenarios

PARAMS = GeneratorParams(m=2)


@pytest.fixture(scope="module")
def ts():
    return generate_taskset(seed=77, params=PARAMS)


@pytest.mark.parametrize("scenario", standard_scenarios(), ids=lambda s: s.name)
@pytest.mark.parametrize("spec", [
    MonitorSpec("simple", 0.2),
    MonitorSpec("simple", 0.6),
    MonitorSpec("simple", 1.0),
    MonitorSpec("adaptive", 0.2),
    MonitorSpec("adaptive", 1.0),
], ids=lambda m: m.label)
def test_always_recovers(ts, scenario, spec):
    out = run_overload_experiment(ts, scenario, spec, keep_artifacts=True)
    r = out.result
    assert not r.truncated, f"{spec.label} on {scenario.name} never recovered"
    assert not out.monitor.recovery_mode
    assert out.kernel.clock.is_normal_speed
    assert r.episodes >= 1
    assert r.dissipation >= 0.0


def test_recovery_on_full_scale_platform():
    ts4 = generate_taskset(seed=2015)
    r = run_overload_experiment(ts4, SHORT, MonitorSpec("simple", 0.6))
    assert not r.truncated
    assert r.dissipation > 0


def test_all_speed_changes_restore_to_one(ts):
    out = run_overload_experiment(
        ts, LONG, MonitorSpec("adaptive", 0.4), keep_artifacts=True
    )
    changes = out.trace.speed_changes
    assert changes, "an overload this severe must trigger recovery"
    assert changes[-1][1] == 1.0
    # Within an ADAPTIVE episode, requested speeds only ratchet downward
    # until the reset to 1.
    episode_speeds = []
    for _, s in changes:
        if s == 1.0:
            episode_speeds = []
        else:
            if episode_speeds:
                assert s < episode_speeds[-1]
            episode_speeds.append(s)


def test_double_midgap_recovery_possible(ts):
    """With an aggressive slowdown, recovery can complete inside the
    DOUBLE gap; the second window then re-triggers a new episode."""
    out = run_overload_experiment(
        ts, DOUBLE, MonitorSpec("simple", 0.2), keep_artifacts=True
    )
    eps = out.monitor.episodes
    assert len(eps) >= 2
    assert any(e.end is not None and e.end < 1.5 for e in eps)
    assert eps[-1].end is not None and eps[-1].end >= 2.0
