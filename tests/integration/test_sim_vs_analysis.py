"""Integration: the simulator never beats the analysis' promises.

Ties the two halves of the reproduction together on task sets the
level-C SRT test (repro.analysis.schedulability) certifies:

* in steady state, every observed level-C response time stays within the
  per-task GEL absolute bounds (repro.analysis.bounds) — the bound is an
  analytical worst case, so simulation must sit at or below it;
* under the paper's overload scenarios with SIMPLE recovery, measured
  dissipation stays within the analytical dissipation bound
  (repro.analysis.dissipation) across recovery speeds.

A failure here means simulator and analysis disagree about the same
system — one of them is wrong.
"""

import pytest

from repro.analysis.bounds import gel_response_bounds
from repro.analysis.dissipation import dissipation_bound
from repro.analysis.schedulability import check_level_c
from repro.experiments.runner import MonitorSpec, run_overload_experiment
from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import standard_scenarios

# Generated task sets that pass the level-C test with finite bounds.
SEEDS = (41, 42, 43, 44, 45)
PARAMS = GeneratorParams(m=2)
HORIZON = 10.0


@pytest.fixture(scope="module")
def certified():
    """(seed, taskset, bounds) for every schedulable seed."""
    out = []
    for seed in SEEDS:
        ts = generate_taskset(seed, PARAMS)
        if not check_level_c(ts).schedulable:
            continue
        bounds = gel_response_bounds(ts)
        if bounds.is_finite:
            out.append((seed, ts, bounds))
    # The corpus must actually exercise something; if generator or
    # analysis drift makes every seed unschedulable, fail loudly instead
    # of green-lighting an empty loop.
    assert len(out) >= 3, f"only {len(out)}/{len(SEEDS)} seeds are certified"
    return out


class TestResponseBounds:
    def test_steady_state_responses_within_absolute_bounds(self, certified):
        for seed, ts, bounds in certified:
            kernel = MC2Kernel(
                ts,
                behavior=ConstantBehavior(),
                config=KernelConfig(record_intervals=False),
            )
            trace = kernel.run(HORIZON)
            completed = trace.completed(CriticalityLevel.C)
            assert completed, f"seed {seed}: no level-C job completed"
            for j in completed:
                bound = bounds.absolute[j.task_id]
                assert j.response_time <= bound + 1e-9, (
                    f"seed {seed}: task {j.task_id} job {j.index} observed "
                    f"response {j.response_time:.6f}s exceeds the analytical "
                    f"absolute bound {bound:.6f}s"
                )

    def test_steady_state_max_response_within_max_bound(self, certified):
        for seed, ts, bounds in certified:
            kernel = MC2Kernel(ts, behavior=ConstantBehavior(),
                               config=KernelConfig(record_intervals=False))
            trace = kernel.run(HORIZON)
            observed = max(trace.response_times(CriticalityLevel.C))
            assert observed <= bounds.max_absolute() + 1e-9

    def test_bounds_are_not_vacuous(self, certified):
        """The certified bounds are finite, positive, and per-task."""
        for seed, ts, bounds in certified:
            level_c = ts.level(CriticalityLevel.C)
            assert set(bounds.absolute) == {t.task_id for t in level_c}
            assert all(b > 0.0 for b in bounds.absolute.values())


class TestDissipationBounds:
    @pytest.mark.parametrize("scenario", standard_scenarios(),
                             ids=lambda s: s.name)
    @pytest.mark.parametrize("s", [0.4, 0.8])
    def test_measured_dissipation_within_bound(self, certified, scenario, s):
        for seed, ts, _ in certified:
            measured = run_overload_experiment(
                ts, scenario, MonitorSpec("simple", s), horizon=HORIZON
            )
            bound = dissipation_bound(
                ts, overload_length=scenario.total_overload_length, speed=s
            )
            assert bound.is_finite, f"seed {seed}: dissipation bound is infinite"
            assert measured.dissipation <= bound.bound, (
                f"seed {seed} {scenario.name} s={s}: measured dissipation "
                f"{measured.dissipation:.4f}s exceeds bound {bound.bound:.4f}s"
            )

    def test_adaptive_recovery_also_within_simple_bound_envelope(self, certified):
        """ADAPTIVE's dissipation obeys the bound at its minimum speed."""
        scenario = standard_scenarios()[0]
        for seed, ts, _ in certified:
            out = run_overload_experiment(
                ts, scenario, MonitorSpec("adaptive", 0.5), horizon=HORIZON
            )
            # min_speed is the slowest speed the monitor installed; the
            # analytical bound at that speed envelopes the whole episode.
            bound = dissipation_bound(
                ts, overload_length=scenario.total_overload_length,
                speed=out.min_speed,
            )
            if bound.is_finite:
                assert out.dissipation <= bound.bound, (
                    f"seed {seed}: adaptive dissipation {out.dissipation:.4f}s "
                    f"exceeds bound {bound.bound:.4f}s at s={out.min_speed:.3f}"
                )
