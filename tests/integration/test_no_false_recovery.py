"""Integration: analytical tolerances are never missed without overload.

Sec. 3: "response-time tolerances should be determined based on
analytical upper bounds of job response times, in order to guarantee
that the virtual clock is never slowed down in the absence of overload."

This is the empirical soundness check of our bound instantiation
(DESIGN.md, substitution 4): on the paper's generated workloads running
normally (every job at its level-C PWCET — the worst case the bound
covers), the monitor must observe zero tolerance misses and never slow
the clock.
"""

import pytest

from repro.core.monitor import SimpleMonitor
from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel as L
from repro.sim.kernel import MC2Kernel
from repro.workload.generator import GeneratorParams, generate_taskset


def run_normal(ts, until):
    kernel = MC2Kernel(ts, behavior=ConstantBehavior(L.C))
    mon = SimpleMonitor(kernel, s=0.5)
    kernel.attach_monitor(mon)
    kernel.run(until)
    return kernel, mon


@pytest.mark.parametrize("seed", range(2015, 2025))
def test_no_miss_on_paper_workloads(seed):
    """Ten of the paper-scale (m=4) generated sets, 3 s of normal run."""
    ts = generate_taskset(seed)
    kernel, mon = run_normal(ts, until=3.0)
    assert mon.miss_count == 0, f"seed {seed}: analytical tolerance violated"
    assert mon.episodes == []
    assert kernel.clock.is_normal_speed


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_no_miss_on_small_platforms(seed):
    ts = generate_taskset(seed, GeneratorParams(m=2))
    _, mon = run_normal(ts, until=3.0)
    assert mon.miss_count == 0


def test_no_miss_with_early_completions():
    """Jobs usually finish below their PWCET (Sec. 3): still no misses."""
    from repro.model.behavior import PwcetFractionBehavior

    ts = generate_taskset(2015)
    kernel = MC2Kernel(ts, behavior=PwcetFractionBehavior(0.6))
    mon = SimpleMonitor(kernel, s=0.5)
    kernel.attach_monitor(mon)
    kernel.run(2.0)
    assert mon.miss_count == 0


def test_margin_only_widens_tolerances():
    ts_tight = generate_taskset(2015, GeneratorParams(tolerance_margin=1.0))
    ts_wide = generate_taskset(2015, GeneratorParams(tolerance_margin=2.0))
    for t_tight in ts_tight.level(L.C):
        t_wide = ts_wide[t_tight.task_id]
        assert t_wide.tolerance == pytest.approx(2.0 * t_tight.tolerance)
