"""Integration: level-D best-effort semantics.

Level D has no guarantees in MC² — it runs on whatever capacity levels
A-C leave behind, and must never delay them.
"""

import pytest

from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.kernel import KernelConfig, MC2Kernel
from tests.conftest import make_a_task, make_c_task


def d_task(tid, period, exec_time, phase=0.0):
    return Task(task_id=tid, level=L.D, period=period,
                pwcets={L.D: exec_time}, phase=phase)


class TestLevelD:
    def test_d_never_delays_level_c(self):
        """Level-C response times are identical with and without D load."""
        cs = [make_c_task(0, 4.0, 2.0, y=3.0), make_c_task(1, 6.0, 3.0, y=5.0)]
        ds = [d_task(30, 2.0, 1.5), d_task(31, 3.0, 2.0)]
        base = MC2Kernel(TaskSet(cs, m=2), behavior=ConstantBehavior()).run(48.0)
        loaded = MC2Kernel(TaskSet(cs + ds, m=2), behavior=ConstantBehavior()).run(48.0)
        for tid in (0, 1):
            a = [(r.index, r.release, r.completion) for r in base.jobs_of(tid)]
            b = [(r.index, r.release, r.completion) for r in loaded.jobs_of(tid)]
            assert a == b

    def test_d_gets_leftover_capacity(self):
        """On an underutilized platform, D work completes."""
        cs = [make_c_task(0, 4.0, 1.0, y=3.0)]
        ds = [d_task(30, 4.0, 1.0)]
        trace = MC2Kernel(TaskSet(cs + ds, m=1), behavior=ConstantBehavior()).run(40.0)
        done = [r for r in trace.jobs_of(30) if r.completion is not None]
        assert len(done) >= 8

    def test_d_starves_on_saturated_platform(self):
        """When A+C consume the CPU, D makes (almost) no progress."""
        a = make_a_task(10, 10.0, 0.25, cpu=0)   # 5.0 at its own level... 0.25 at C
        c = make_c_task(0, 4.0, 3.9, y=3.0)
        d = d_task(30, 4.0, 1.0)
        kernel = MC2Kernel(TaskSet([a, c, d], m=1),
                           behavior=ConstantBehavior(),
                           config=KernelConfig(record_intervals=True))
        trace = kernel.run(40.0)
        d_time = sum(iv.length for iv in trace.intervals_of(30))
        total_c = sum(iv.length for iv in trace.intervals_of(0))
        assert total_c > 30.0
        assert d_time < 3.0

    def test_d_jobs_run_fifo(self):
        ds = [d_task(30, 100.0, 1.0, phase=0.0), d_task(31, 100.0, 1.0, phase=0.5)]
        trace = MC2Kernel(TaskSet(ds, m=1), behavior=ConstantBehavior()).run(10.0)
        assert trace.job(30, 0).completion == pytest.approx(1.0)
        assert trace.job(31, 0).completion == pytest.approx(2.0)

    def test_d_intra_task_precedence(self):
        """Even best-effort tasks execute their jobs sequentially."""
        d = d_task(30, 1.0, 3.0)  # overloaded D task, backlog builds
        kernel = MC2Kernel(TaskSet([d], m=2), behavior=ConstantBehavior(),
                           config=KernelConfig(record_intervals=True))
        trace = kernel.run(12.0)
        ivs = sorted(trace.intervals_of(30), key=lambda iv: iv.start)
        for a, b in zip(ivs, ivs[1:]):
            assert a.end <= b.start + 1e-9  # never two D jobs in parallel