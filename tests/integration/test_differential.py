"""Differential testing: event-driven kernel vs. quantum-stepped reference.

On systems whose parameters (phases, periods, execution times, speed
changes) are integral multiples of the reference quantum, the
event-driven kernel and the obviously-correct time-stepped reference
simulator must agree on every release and completion instant.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.behavior import TraceBehavior
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.kernel import MC2Kernel
from repro.sim.reference import simulate_reference

QUANTUM = 0.5
HORIZON = 40.0


def c_task(tid, period, pwcet, y, phase=0.0):
    return Task(task_id=tid, level=L.C, period=period, pwcets={L.C: pwcet},
                relative_pp=y, phase=phase)


def run_kernel(tasks, m, behavior, speed_changes):
    kernel = MC2Kernel(TaskSet(tasks, m=m), behavior=behavior)
    kernel.start()
    for t_change, s in speed_changes:
        kernel.run_until(t_change)
        kernel.change_speed(s, kernel.engine.now)
    kernel.run_until(HORIZON)
    return kernel.finish()


def compare(tasks, m, exec_overrides=None, speed_changes=()):
    behavior = TraceBehavior(exec_overrides or {})
    trace = run_kernel(tasks, m, behavior, speed_changes)
    ref = simulate_reference(
        tasks, m, HORIZON, quantum=QUANTUM,
        behavior=TraceBehavior(exec_overrides or {}),
        speed_changes=speed_changes,
    )
    ref_jobs = {(j.task_id, j.index): j for j in ref.jobs}
    kernel_jobs = {
        (r.task_id, r.index): r
        for r in trace.jobs
        # Ignore the horizon fringe: the two simulators may disagree on
        # whether a job releasing exactly at the horizon exists.
        if r.release < HORIZON - 2 * QUANTUM
    }
    assert set(kernel_jobs) <= set(ref_jobs)
    mismatches = []
    for key, kj in kernel_jobs.items():
        rj = ref_jobs[key]
        if abs(kj.release - rj.release) > 1e-9:
            mismatches.append((key, "release", kj.release, rj.release))
        kc = kj.completion
        rc = rj.completion
        if kc is not None and rc is not None and abs(kc - rc) > 1e-9:
            mismatches.append((key, "completion", kc, rc))
    assert not mismatches, mismatches[:5]
    return trace, ref


class TestDifferentialBasics:
    def test_single_task(self):
        compare([c_task(0, 4.0, 1.5, y=3.0)], m=1)

    def test_two_tasks_one_cpu(self):
        compare([c_task(0, 4.0, 1.0, y=2.0), c_task(1, 6.0, 2.5, y=5.0)], m=1)

    def test_three_tasks_two_cpus(self):
        compare(
            [c_task(0, 4.0, 2.0, y=3.0), c_task(1, 6.0, 3.0, y=5.0),
             c_task(2, 8.0, 3.5, y=6.0)],
            m=2,
        )

    def test_phases(self):
        compare(
            [c_task(0, 4.0, 1.0, y=2.0, phase=1.0),
             c_task(1, 6.0, 2.0, y=4.0, phase=2.5)],
            m=1,
        )

    def test_overrun_with_precedence(self):
        compare(
            [c_task(0, 4.0, 1.0, y=2.0), c_task(1, 8.0, 2.0, y=6.0)],
            m=2,
            exec_overrides={(0, 0): 6.0},
        )

    def test_equal_priority_ties(self):
        compare(
            [c_task(0, 6.0, 2.0, y=4.0), c_task(1, 6.0, 2.0, y=4.0),
             c_task(2, 6.0, 2.0, y=4.0)],
            m=2,
        )


class TestDifferentialVirtualTime:
    def test_slowdown_and_restore(self):
        compare(
            [c_task(0, 4.0, 1.0, y=3.0), c_task(1, 6.0, 2.0, y=5.0)],
            m=1,
            speed_changes=[(10.0, 0.5), (20.0, 1.0)],
        )

    def test_slowdown_with_overrun(self):
        compare(
            [c_task(0, 4.0, 1.5, y=3.0), c_task(1, 8.0, 3.0, y=7.0)],
            m=2,
            exec_overrides={(0, 1): 5.0},
            speed_changes=[(8.0, 0.5), (24.0, 1.0)],
        )

    def test_multiple_speed_changes(self):
        compare(
            [c_task(0, 4.0, 1.0, y=3.0)],
            m=1,
            speed_changes=[(6.0, 0.5), (14.0, 1.0), (22.0, 0.5), (30.0, 1.0)],
        )


@st.composite
def aligned_systems(draw):
    """Random systems with all parameters on the 0.5 grid, speeds in {0.5, 1}."""
    m = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    overrides = {}
    for tid in range(n):
        period = draw(st.integers(min_value=2, max_value=8)) * 1.0
        pwcet = draw(st.integers(min_value=1, max_value=int(period / QUANTUM))) * QUANTUM
        y = draw(st.integers(min_value=0, max_value=12)) * QUANTUM
        phase = draw(st.integers(min_value=0, max_value=4)) * QUANTUM
        tasks.append(c_task(tid, period, pwcet, y=y, phase=phase))
        if draw(st.booleans()):
            k = draw(st.integers(min_value=0, max_value=3))
            overrides[(tid, k)] = draw(st.integers(min_value=1, max_value=16)) * QUANTUM
    n_changes = draw(st.integers(min_value=0, max_value=2))
    # Speed changes at *integer* instants: a 0.5-speed segment of integer
    # length keeps virtual time on the 0.5 grid, so every release still
    # lands on a reference-quantum boundary.
    times = sorted(draw(st.lists(st.integers(min_value=1, max_value=35),
                                 min_size=n_changes, max_size=n_changes,
                                 unique=True)))
    speed_changes = []
    s = 1.0
    for t in times:
        s = 0.5 if s == 1.0 else 1.0
        speed_changes.append((float(t), s))
    return tasks, m, overrides, speed_changes


@given(aligned_systems())
@settings(max_examples=50, deadline=None)
def test_differential_random_aligned_systems(system):
    tasks, m, overrides, speed_changes = system
    compare(tasks, m, exec_overrides=overrides, speed_changes=speed_changes)
