"""Integration: measured dissipation never exceeds the analytical bound.

The dissipation bound (repro.analysis.dissipation, our instantiation of
tech report [8]) must upper-bound the dissipation the simulator actually
measures, across scenarios and recovery speeds.
"""

import pytest

from repro.analysis.dissipation import dissipation_bound
from repro.experiments.runner import MonitorSpec, run_overload_experiment
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import LONG, SHORT, standard_scenarios


@pytest.fixture(scope="module")
def ts():
    return generate_taskset(seed=31, params=GeneratorParams(m=2))


@pytest.mark.parametrize("scenario", standard_scenarios(), ids=lambda s: s.name)
@pytest.mark.parametrize("s", [0.2, 0.6, 1.0])
def test_measured_below_bound(ts, scenario, s):
    measured = run_overload_experiment(ts, scenario, MonitorSpec("simple", s))
    bound = dissipation_bound(
        ts, overload_length=scenario.total_overload_length, speed=s
    )
    assert bound.is_finite
    assert measured.dissipation <= bound.bound, (
        f"{scenario.name} s={s}: measured {measured.dissipation:.3f}s "
        f"exceeds bound {bound.bound:.3f}s"
    )


def test_bound_holds_at_full_scale():
    ts4 = generate_taskset(seed=2016)
    measured = run_overload_experiment(ts4, SHORT, MonitorSpec("simple", 0.6))
    bound = dissipation_bound(ts4, overload_length=0.5, speed=0.6)
    assert measured.dissipation <= bound.bound


def test_bound_scales_like_measurements(ts):
    """LONG's bound and measurement are both about 2x SHORT's."""
    m_short = run_overload_experiment(ts, SHORT, MonitorSpec("simple", 0.6))
    m_long = run_overload_experiment(ts, LONG, MonitorSpec("simple", 0.6))
    b_short = dissipation_bound(ts, 0.5, 0.6)
    b_long = dissipation_bound(ts, 1.0, 0.6)
    assert m_long.dissipation > m_short.dissipation
    assert b_long.bound > b_short.bound
