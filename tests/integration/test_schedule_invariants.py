"""Integration: structural invariants of simulated schedules.

Run realistic mixed-criticality workloads with interval recording and
check the properties any valid MC² schedule must satisfy.
"""

import collections

import pytest

from repro.core.monitor import SimpleMonitor
from repro.core.virtual_time import SpeedProfile
from repro.model.task import CriticalityLevel as L
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import SHORT


@pytest.fixture(scope="module")
def run():
    ts = generate_taskset(seed=9, params=GeneratorParams(m=2))
    kernel = MC2Kernel(
        ts,
        behavior=SHORT.behavior(),
        config=KernelConfig(record_intervals=True),
    )
    mon = SimpleMonitor(kernel, s=0.5)
    kernel.attach_monitor(mon)
    trace = kernel.run(4.0)
    return ts, trace, kernel


def test_no_cpu_runs_two_jobs_at_once(run):
    _, trace, _ = run
    by_cpu = collections.defaultdict(list)
    for iv in trace.intervals:
        by_cpu[iv.cpu].append(iv)
    for cpu, ivs in by_cpu.items():
        ivs.sort(key=lambda iv: iv.start)
        for a, b in zip(ivs, ivs[1:]):
            assert a.end <= b.start + 1e-9, f"cpu {cpu} overlap: {a} vs {b}"


def test_no_job_runs_on_two_cpus_at_once(run):
    _, trace, _ = run
    by_job = collections.defaultdict(list)
    for iv in trace.intervals:
        by_job[(iv.task_id, iv.job_index)].append(iv)
    for jid, ivs in by_job.items():
        ivs.sort(key=lambda iv: iv.start)
        for a, b in zip(ivs, ivs[1:]):
            assert a.end <= b.start + 1e-9, f"job {jid} parallel self-execution"


def test_executed_time_equals_demand_for_completed_jobs(run):
    _, trace, _ = run
    executed = collections.defaultdict(float)
    for iv in trace.intervals:
        executed[(iv.task_id, iv.job_index)] += iv.length
    for rec in trace.completed():
        got = executed[(rec.task_id, rec.index)]
        assert got == pytest.approx(rec.exec_time, abs=1e-6), (
            f"job ({rec.task_id},{rec.index}) executed {got} != demand {rec.exec_time}"
        )


def test_no_execution_before_release_or_after_completion(run):
    _, trace, _ = run
    recs = {(r.task_id, r.index): r for r in trace.jobs}
    for iv in trace.intervals:
        rec = recs[(iv.task_id, iv.job_index)]
        assert iv.start >= rec.release - 1e-9
        if rec.completion is not None:
            assert iv.end <= rec.completion + 1e-9


def test_same_task_jobs_execute_sequentially(run):
    """Intra-task precedence: job k+1 never executes before job k completes."""
    _, trace, _ = run
    recs = {(r.task_id, r.index): r for r in trace.jobs}
    for iv in trace.intervals:
        prev = recs.get((iv.task_id, iv.job_index - 1))
        if prev is not None and prev.completion is not None:
            assert iv.start >= prev.completion - 1e-9


def test_ab_jobs_stay_on_their_cpu(run):
    ts, trace, _ = run
    for iv in trace.intervals:
        task = ts[iv.task_id]
        if task.level.is_hard:
            assert iv.cpu == task.cpu


def test_level_a_jobs_meet_deadlines_despite_overload(run):
    """Level-A demand never exceeds its own PWCET (20x level C), and the
    level-A partition is feasible, so A is unaffected by the overload."""
    ts, trace, _ = run
    for rec in trace.completed(L.A):
        assert rec.completion <= rec.release + ts[rec.task_id].period + 1e-9


def test_level_c_releases_respect_eq5_under_recorded_profile(run):
    """Check eq. 5 post-hoc: consecutive virtual releases differ >= T_i."""
    ts, trace, _ = run
    profile = SpeedProfile.from_segments(0.0, trace.speed_changes)
    by_task = collections.defaultdict(list)
    for rec in trace.jobs:
        if rec.level is L.C:
            by_task[rec.task_id].append(rec)
    checked = 0
    for tid, recs in by_task.items():
        recs.sort(key=lambda r: r.index)
        period = ts[tid].period
        for a, b in zip(recs, recs[1:]):
            va, vb = profile.v(a.release), profile.v(b.release)
            assert vb - va >= period - 1e-6, (
                f"tau{tid}: virtual separation {vb - va} < T={period}"
            )
            checked += 1
    assert checked > 50  # the run actually exercised many releases


def test_virtual_pps_match_eq6(run):
    ts, trace, _ = run
    for rec in trace.jobs:
        if rec.level is L.C and rec.virtual_pp is not None:
            y = ts[rec.task_id].relative_pp
            assert rec.virtual_pp == pytest.approx(rec.virtual_release + y)
