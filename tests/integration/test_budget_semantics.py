"""Integration: the footnote-2/3 budget semantics, end to end.

Footnote 2: "While the use of execution budgets would prevent level-A
and -B tasks from overrunning their level-A and -B PWCETs, respectively,
they can still overrun their level-C PWCETs.  Thus, we have chosen
examples that provide overload even when execution budgets are used."

Footnote 3: "execution budgets can be used to restore this assumption
[eq. 1] at level C, in which case overloads can come only from levels A
and B."

These tests run the actual scenarios through the kernel with different
budget configurations and check the claims hold behaviourally.
"""

import pytest

from repro.core.monitor import SimpleMonitor
from repro.model.task import CriticalityLevel as L
from repro.sim.budgets import BudgetEnforcedBehavior
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import SHORT


@pytest.fixture(scope="module")
def ts():
    return generate_taskset(seed=17, params=GeneratorParams(m=2))


def run_with(ts, behavior, horizon=4.0):
    kernel = MC2Kernel(ts, behavior=behavior, config=KernelConfig())
    mon = SimpleMonitor(kernel, s=0.5)
    kernel.attach_monitor(mon)
    trace = kernel.run(horizon)
    return trace, mon


def test_footnote2_overload_persists_with_full_budgets(ts):
    """Even with budgets at every level (A, B and C), the SHORT scenario
    still overloads level C: A/B jobs legally run up to their own (much
    larger) PWCETs, exceeding their level-C provisioning."""
    behavior = BudgetEnforcedBehavior(
        SHORT.behavior(), enforce_a=True, enforce_b=True, enforce_c=True
    )
    trace, mon = run_with(ts, behavior)
    assert mon.miss_count > 0, "budgets must not prevent level-C overload"
    assert mon.episodes, "recovery must have triggered"


def test_footnote3_c_budgets_cap_level_c_execution(ts):
    """With level-C budgets, eq. 1 holds at level C: no level-C job's
    execution exceeds its level-C PWCET."""
    behavior = BudgetEnforcedBehavior(SHORT.behavior(), enforce_c=True)
    trace, _ = run_with(ts, behavior)
    for rec in trace.completed(L.C):
        assert rec.exec_time <= ts[rec.task_id].pwcet(L.C) + 1e-12


def test_without_c_budgets_level_c_overruns(ts):
    """Without budgets, level-C jobs released in the window run their
    level-B PWCETs (10x) — eq. 1 is genuinely violated."""
    trace, _ = run_with(ts, SHORT.behavior(), horizon=8.0)
    overruns = [
        rec for rec in trace.completed(L.C)
        if rec.exec_time > ts[rec.task_id].pwcet(L.C) + 1e-12
    ]
    assert overruns, "the no-budget scenario must contain level-C overruns"


def test_ab_budgets_cap_ab_execution(ts):
    """Budgets at A/B bound those levels by their own PWCETs."""
    behavior = BudgetEnforcedBehavior(SHORT.behavior(), enforce_a=True,
                                      enforce_b=True)
    trace, _ = run_with(ts, behavior)
    for rec in trace.completed(L.A):
        assert rec.exec_time <= ts[rec.task_id].pwcet(L.A) + 1e-12
    for rec in trace.completed(L.B):
        assert rec.exec_time <= ts[rec.task_id].pwcet(L.B) + 1e-12


def test_budgeted_overload_recovers_faster(ts):
    """Capping level-C demand shrinks the backlog, hence the recovery."""
    from repro.experiments.runner import MonitorSpec, run_overload_experiment

    with_b = run_overload_experiment(ts, SHORT, MonitorSpec("simple", 0.5),
                                     level_c_budgets=True)
    without = run_overload_experiment(ts, SHORT, MonitorSpec("simple", 0.5),
                                      level_c_budgets=False, horizon=60.0)
    assert with_b.dissipation < without.dissipation
