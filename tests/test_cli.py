"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main, parse_monitor
from repro.io.taskset_json import taskset_from_json


class TestParseMonitor:
    def test_simple(self):
        spec = parse_monitor("simple:0.6")
        assert spec.kind == "simple" and spec.param == 0.6

    def test_defaults(self):
        spec = parse_monitor("none")
        assert spec.kind == "none"

    def test_extra(self):
        spec = parse_monitor("clamped:0.6:0.3")
        assert (spec.kind, spec.param, spec.extra) == ("clamped", 0.6, 0.3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            parse_monitor("magic:0.5")


class TestGenerate:
    def test_to_stdout(self, capsys):
        assert main(["generate", "--seed", "3", "--m", "2"]) == 0
        out = capsys.readouterr().out
        ts = taskset_from_json(out)
        assert ts.m == 2

    def test_to_file(self, tmp_path, capsys):
        path = tmp_path / "ts.json"
        assert main(["generate", "--seed", "3", "--m", "2", "-o", str(path)]) == 0
        ts = taskset_from_json(path.read_text())
        assert len(ts) > 5


class TestAnalyze:
    def test_from_file(self, tmp_path, capsys):
        path = tmp_path / "ts.json"
        main(["generate", "--seed", "3", "--m", "2", "-o", str(path)])
        capsys.readouterr()
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "schedulable" in out
        assert "shared delay term" in out

    def test_generated_inline(self, capsys):
        assert main(["analyze", "--seed", "3", "--m", "2"]) == 0
        assert "bound (ms)" in capsys.readouterr().out


class TestSimulate:
    def test_text_output(self, capsys):
        assert main(["simulate", "--seed", "3", "--m", "2",
                     "--scenario", "SHORT", "--monitor", "simple:0.6"]) == 0
        out = capsys.readouterr().out
        assert "SIMPLE(s=0.6)" in out
        assert "dissipation" in out

    def test_json_output(self, capsys):
        assert main(["simulate", "--seed", "3", "--m", "2", "--json",
                     "--monitor", "adaptive:0.4"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["monitor"] == "ADAPTIVE(a=0.4)"
        assert doc["dissipation"] > 0

    def test_extension_monitor(self, capsys):
        assert main(["simulate", "--seed", "3", "--m", "2",
                     "--monitor", "clamped:0.6:0.3", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["min_speed"] >= 0.3 - 1e-9

    def test_bad_monitor_errors(self):
        with pytest.raises(ValueError):
            main(["simulate", "--seed", "3", "--m", "2", "--monitor", "bogus:1"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        args = build_parser().parse_args(["figures", "--figure", "6"])
        assert args.figure == "6"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "5"])
