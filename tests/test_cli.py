"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main, parse_monitor
from repro.io.taskset_json import taskset_from_json


class TestParseMonitor:
    def test_simple(self):
        spec = parse_monitor("simple:0.6")
        assert spec.kind == "simple" and spec.param == 0.6

    def test_defaults(self):
        spec = parse_monitor("none")
        assert spec.kind == "none"

    def test_extra(self):
        spec = parse_monitor("clamped:0.6:0.3")
        assert (spec.kind, spec.param, spec.extra) == ("clamped", 0.6, 0.3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            parse_monitor("magic:0.5")


class TestGenerate:
    def test_to_stdout(self, capsys):
        assert main(["generate", "--seed", "3", "--m", "2"]) == 0
        out = capsys.readouterr().out
        ts = taskset_from_json(out)
        assert ts.m == 2

    def test_to_file(self, tmp_path, capsys):
        path = tmp_path / "ts.json"
        assert main(["generate", "--seed", "3", "--m", "2", "-o", str(path)]) == 0
        ts = taskset_from_json(path.read_text())
        assert len(ts) > 5


class TestAnalyze:
    def test_from_file(self, tmp_path, capsys):
        path = tmp_path / "ts.json"
        main(["generate", "--seed", "3", "--m", "2", "-o", str(path)])
        capsys.readouterr()
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "schedulable" in out
        assert "shared delay term" in out

    def test_generated_inline(self, capsys):
        assert main(["analyze", "--seed", "3", "--m", "2"]) == 0
        assert "bound (ms)" in capsys.readouterr().out


class TestSimulate:
    def test_text_output(self, capsys):
        assert main(["simulate", "--seed", "3", "--m", "2",
                     "--scenario", "SHORT", "--monitor", "simple:0.6"]) == 0
        out = capsys.readouterr().out
        assert "SIMPLE(s=0.6)" in out
        assert "dissipation" in out

    def test_json_output(self, capsys):
        assert main(["simulate", "--seed", "3", "--m", "2", "--json",
                     "--monitor", "adaptive:0.4"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["monitor"] == "ADAPTIVE(a=0.4)"
        assert doc["dissipation"] > 0

    def test_extension_monitor(self, capsys):
        assert main(["simulate", "--seed", "3", "--m", "2",
                     "--monitor", "clamped:0.6:0.3", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["min_speed"] >= 0.3 - 1e-9

    def test_bad_monitor_errors(self):
        with pytest.raises(ValueError):
            main(["simulate", "--seed", "3", "--m", "2", "--monitor", "bogus:1"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        args = build_parser().parse_args(["figures", "--figure", "6"])
        assert args.figure == "6"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "5"])


class TestObservabilityFlags:
    def test_trace_dir_and_metrics_out(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        metrics = tmp_path / "metrics.json"
        assert main(["simulate", "--seed", "3", "--m", "2",
                     "--trace-dir", str(trace_dir),
                     "--metrics-out", str(metrics)]) == 0
        traces = list(trace_dir.glob("run-*.jsonl"))
        assert len(traces) == 1
        doc = json.loads(metrics.read_text())
        assert doc["format"] == "repro-sweep-report"
        assert doc["summary"]["cells_simulated"] == 1
        assert "executor.cell.ns" in doc["metrics"]["histograms"]

    def test_truncation_warning(self, capsys):
        # A horizon just past the overload window catches recovery open.
        assert main(["simulate", "--seed", "3", "--m", "2",
                     "--horizon", "0.6"]) == 0
        err = capsys.readouterr().err
        assert "recovery still open" in err

    def test_no_warning_when_settled(self, capsys):
        assert main(["simulate", "--seed", "3", "--m", "2"]) == 0
        assert "recovery still open" not in capsys.readouterr().err

    def test_progress_flag(self, capsys):
        assert main(["simulate", "--seed", "3", "--m", "2", "--progress"]) == 0
        assert "[sweep] 1/1 cells" in capsys.readouterr().err


class TestTraceCommand:
    def _make_trace(self, tmp_path):
        trace_dir = tmp_path / "traces"
        main(["simulate", "--seed", "3", "--m", "2",
              "--trace-dir", str(trace_dir)])
        [path] = trace_dir.glob("run-*.jsonl")
        return path

    def test_summarize_text(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "events over t=" in out
        assert "job_release" in out

    def test_summarize_json(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["trace_meta"] == 1
        assert doc["events"] == sum(doc["counts"].values())

    def test_convert(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        out = tmp_path / "chrome.json"
        capsys.readouterr()
        assert main(["trace", "convert", str(path), "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert "wrote" in capsys.readouterr().out
