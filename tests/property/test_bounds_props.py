"""Property tests for the response-time bounds.

The strongest check: for random *schedulable* level-C systems running
normally (every job at its PWCET), the simulator's observed response
times never exceed the analytical bound ``Y_i + x + C_i`` — the bound
the tolerances are derived from.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import gel_response_bounds, response_bound_x
from repro.analysis.supply import SupplyModel
from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.kernel import MC2Kernel


@st.composite
def schedulable_systems(draw):
    m = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=1, max_value=5))
    tasks = []
    for tid in range(n):
        period = draw(st.floats(min_value=2.0, max_value=10.0))
        u = draw(st.floats(min_value=0.05, max_value=0.5))
        pwcet = u * period
        y = draw(st.floats(min_value=0.0, max_value=2.0 * period))
        tasks.append(Task(task_id=tid, level=L.C, period=period,
                          pwcets={L.C: pwcet}, relative_pp=y))
    ts = TaskSet(tasks, m=m)
    u_total = ts.utilization(L.C)
    assume(u_total < 0.9 * m)  # comfortably schedulable
    return ts


@given(schedulable_systems())
@settings(max_examples=40, deadline=None)
def test_simulated_responses_never_exceed_bound(ts):
    bounds = gel_response_bounds(ts)
    assume(bounds.is_finite)
    kernel = MC2Kernel(ts, behavior=ConstantBehavior(L.C))
    trace = kernel.run(60.0)
    for rec in trace.completed(L.C):
        limit = bounds.absolute[rec.task_id]
        assert rec.response_time <= limit + 1e-6, (
            f"tau{rec.task_id},{rec.index}: R={rec.response_time} > bound={limit}"
        )


@given(schedulable_systems())
@settings(max_examples=60, deadline=None)
def test_x_nonnegative_or_infinite(ts):
    x = response_bound_x(ts.tasks, SupplyModel.unrestricted(ts.m))
    assert x >= 0.0 or math.isinf(x)


@given(schedulable_systems(), st.floats(min_value=0.0, max_value=5.0))
@settings(max_examples=60, deadline=None)
def test_x_monotone_in_supply_burst(ts, burst):
    base = SupplyModel.unrestricted(ts.m)
    bursty = SupplyModel(alphas=base.alphas, sigmas=(burst,) * ts.m)
    assert response_bound_x(ts.tasks, base) <= response_bound_x(ts.tasks, bursty) + 1e-12


@given(schedulable_systems(), st.floats(min_value=0.5, max_value=0.99))
@settings(max_examples=60, deadline=None)
def test_x_monotone_in_supply_rate(ts, alpha):
    full = SupplyModel.unrestricted(ts.m)
    reduced = SupplyModel(alphas=(alpha,) * ts.m, sigmas=(0.0,) * ts.m)
    x_full = response_bound_x(ts.tasks, full)
    x_red = response_bound_x(ts.tasks, reduced)
    assert x_red >= x_full - 1e-12 or math.isinf(x_red)
