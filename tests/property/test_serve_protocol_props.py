"""Property tests: the ``repro-serve`` v1 wire protocol framing.

Hypothesis pins the three framing invariants the fabric's durability
story rests on:

* every message type round-trips ``encode -> decode`` exactly;
* a :class:`~repro.serve.protocol.LineDecoder` fed arbitrary torn
  chunkings of a frame stream yields exactly the original messages, in
  order (partial reads never corrupt or duplicate);
* unknown *fields* are ignored on decode (forward compatibility) while
  unknown *types* and non-object frames fail loudly.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.protocol import (
    MESSAGE_TYPES,
    LineDecoder,
    ProtocolError,
    decode_message,
    encode_message,
)

json_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)


def _field_strategy(f: dataclasses.Field):
    """A value strategy matching the field's declared v1 type."""
    ann = str(f.type)
    if "List[Dict" in ann:
        return st.lists(
            st.dictionaries(st.text(max_size=8), json_scalars, max_size=3),
            max_size=3,
        )
    if "List[str]" in ann:
        return st.lists(st.text(max_size=16), max_size=4)
    if "Dict" in ann:
        return st.dictionaries(st.text(max_size=8), json_values, max_size=3)
    if "bool" in ann:
        return st.booleans()
    if "int" in ann:
        return st.integers(min_value=-(2**53), max_value=2**53)
    if "float" in ann:
        return st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        )
    return st.text(max_size=32)


def _message_strategy(cls):
    kwargs = {f.name: _field_strategy(f) for f in dataclasses.fields(cls)}
    return st.builds(cls, **kwargs)


messages = st.one_of([
    _message_strategy(cls)
    for cls in sorted(MESSAGE_TYPES.values(), key=lambda c: c.TYPE)
])


@given(messages)
@settings(max_examples=100)
def test_every_message_round_trips(msg):
    frame = encode_message(msg)
    assert frame.endswith(b"\n")
    assert frame.count(b"\n") == 1  # canonical JSON never embeds the terminator
    decoded = decode_message(frame[:-1].decode("utf-8"))
    assert type(decoded) is type(msg)
    assert decoded == msg


@given(st.lists(messages, min_size=1, max_size=6), st.data())
@settings(max_examples=100)
def test_torn_chunking_never_corrupts(msgs, data):
    stream = b"".join(encode_message(m) for m in msgs)
    # Cut the stream at arbitrary byte positions (including mid-frame
    # and mid-UTF-8) and feed the pieces one by one.
    cuts = sorted(data.draw(st.lists(
        st.integers(min_value=0, max_value=len(stream)), max_size=8,
    )))
    decoder = LineDecoder()
    out = []
    prev = 0
    for cut in cuts + [len(stream)]:
        out.extend(decoder.feed(stream[prev:cut]))
        prev = cut
    assert out == msgs
    assert decoder.pending == 0


@given(messages, st.dictionaries(
    st.text(min_size=1, max_size=10).filter(lambda s: s != "type"),
    json_values, min_size=1, max_size=4,
))
@settings(max_examples=100)
def test_unknown_fields_are_ignored(msg, extra):
    doc = dataclasses.asdict(msg)
    known = set(doc)
    doc["type"] = msg.TYPE
    doc.update({k: v for k, v in extra.items() if k not in known and k != "type"})
    decoded = decode_message(json.dumps(doc))
    assert decoded == msg


@given(st.text(min_size=1, max_size=20))
def test_unknown_type_raises(tag):
    if tag in MESSAGE_TYPES:
        return
    with pytest.raises(ProtocolError):
        decode_message(json.dumps({"type": tag}))


@pytest.mark.parametrize("line", [
    "not json at all",
    "[1, 2, 3]",
    '"just a string"',
    "{'single': 'quotes'}",
    '{"no_type_field": true}',
])
def test_garbage_frames_fail_loudly(line):
    with pytest.raises(ProtocolError):
        decode_message(line)


def test_blank_lines_are_skipped():
    decoder = LineDecoder()
    frames = b'\n\n{"type":"cell_ok"}\n   \n{"type":"hello_ok"}\n'
    out = list(decoder.feed(frames))
    assert [m.TYPE for m in out] == ["cell_ok", "hello_ok"]
    assert decoder.pending == 0
