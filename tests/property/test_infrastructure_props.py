"""Property tests for the infrastructure: event queue, serialization,
timeline binning, and the reference simulator's self-consistency."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.timeline import TimelineBin, render_sparkline
from repro.io.taskset_json import task_from_dict, task_to_dict
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.reference import simulate_reference


# ----------------------------------------------------------------------
# Event queue
# ----------------------------------------------------------------------
events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.sampled_from(list(EventKind)),
    ),
    max_size=50,
)


@given(events)
def test_queue_pops_in_total_order(pairs):
    q = EventQueue()
    for t, kind in pairs:
        q.push(Event(time=t, kind=kind))
    out = []
    while q:
        ev = q.pop()
        out.append((ev.time, int(ev.kind)))
    assert out == sorted(out)


@given(events)
def test_queue_preserves_count(pairs):
    q = EventQueue()
    for t, kind in pairs:
        q.push(Event(time=t, kind=kind))
    assert len(q) == len(pairs)
    n = 0
    while q:
        q.pop()
        n += 1
    assert n == len(pairs)


@given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=1, max_size=30))
def test_equal_time_equal_kind_is_fifo(times):
    t = min(times)
    q = EventQueue()
    for i in range(len(times)):
        q.push(Event(time=t, kind=EventKind.RELEASE, payload=i))
    assert [q.pop().payload for _ in range(len(times))] == list(range(len(times)))


# ----------------------------------------------------------------------
# Task serialization
# ----------------------------------------------------------------------
@st.composite
def arbitrary_tasks(draw):
    level = draw(st.sampled_from([L.A, L.B, L.C, L.D]))
    period = draw(st.floats(min_value=0.001, max_value=10.0))
    pwcets = {}
    if level is not L.D:
        c = draw(st.floats(min_value=1e-6, max_value=period))
        pwcets[L.C] = c
        if level in (L.A, L.B):
            pwcets[L.B] = 10 * c
        if level is L.A:
            pwcets[L.A] = 20 * c
    kwargs = dict(
        task_id=draw(st.integers(min_value=0, max_value=10_000)),
        level=level,
        period=period,
        pwcets=pwcets,
        phase=draw(st.floats(min_value=0.0, max_value=5.0)),
        name=draw(st.text(alphabet="abcXYZ09_", max_size=8)),
    )
    if level is L.C:
        kwargs["relative_pp"] = draw(st.floats(min_value=0.0, max_value=20.0))
        if draw(st.booleans()):
            kwargs["tolerance"] = draw(st.floats(min_value=0.0, max_value=5.0))
    if level in (L.A, L.B):
        kwargs["cpu"] = draw(st.integers(min_value=0, max_value=7))
    return Task(**kwargs)


@given(arbitrary_tasks())
@settings(max_examples=200)
def test_task_json_roundtrip(task):
    assert task_from_dict(task_to_dict(task)) == task


# ----------------------------------------------------------------------
# Timeline binning
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=1, max_size=40))
def test_sparkline_length_and_alphabet(values):
    bins = [TimelineBin(start=i, end=i + 1, jobs=1, max_response=v,
                        max_normalized=v) for i, v in enumerate(values)]
    art = render_sparkline(bins)
    assert len(art) == len(values)
    assert set(art) <= set("▁▂▃▄▅▆▇█")


@given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=5, max_size=60),
       st.integers(min_value=1, max_value=10))
def test_sparkline_downsampling_keeps_max(values, width):
    bins = [TimelineBin(start=i, end=i + 1, jobs=1, max_response=v,
                        max_normalized=v) for i, v in enumerate(values)]
    art = render_sparkline(bins, width=min(width, len(values)))
    if max(values) > 0:
        assert "█" in art  # the global max always maps to full height


# ----------------------------------------------------------------------
# Reference simulator self-consistency
# ----------------------------------------------------------------------
@st.composite
def ref_systems(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    tasks = []
    for tid in range(n):
        period = draw(st.integers(min_value=2, max_value=6)) * 1.0
        pwcet = draw(st.integers(min_value=1, max_value=4)) * 0.5
        tasks.append(Task(task_id=tid, level=L.C, period=period,
                          pwcets={L.C: min(pwcet, period)},
                          relative_pp=float(draw(st.integers(0, 6)))))
    m = draw(st.integers(min_value=1, max_value=2))
    return tasks, m


@given(ref_systems())
@settings(max_examples=60, deadline=None)
def test_reference_releases_respect_period(system):
    tasks, m = system
    res = simulate_reference(tasks, m, until=30.0)
    by_task = {}
    for j in res.jobs:
        by_task.setdefault(j.task_id, []).append(j)
    for tid, jobs in by_task.items():
        period = next(t.period for t in tasks if t.task_id == tid)
        jobs.sort(key=lambda j: j.index)
        for a, b in zip(jobs, jobs[1:]):
            assert b.virtual_release - a.virtual_release >= period - 1e-9


@given(ref_systems())
@settings(max_examples=60, deadline=None)
def test_reference_completions_after_release_plus_demand(system):
    tasks, m = system
    res = simulate_reference(tasks, m, until=30.0)
    for j in res.jobs:
        if j.completion is not None:
            assert j.completion >= j.release + j.exec_time - 1e-9
