"""Property test: the incremental dispatcher is trace-equivalent to the
baseline on hypothesis-drawn scenarios.

Complements the fixed randomized sweep in
``tests/sim/test_dispatch_equivalence.py``: hypothesis explores the
scenario space adaptively and shrinks any divergence to a minimal
counterexample (a specific ``DiffScenario`` one can replay through
``compare_dispatchers`` directly).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.diffcheck import DiffScenario, compare_dispatchers


@st.composite
def diff_scenarios(draw):
    behavior = draw(
        st.sampled_from(["SHORT", "LONG", "DOUBLE", "constant", "overrun"])
    )
    overloady = behavior != "constant"
    monitor = draw(
        st.sampled_from(["simple", "adaptive"])
        if overloady
        else st.sampled_from(["null", "simple", "adaptive"])
    )
    use_virtual_time = True if monitor != "null" else draw(st.booleans())
    return DiffScenario(
        seed=draw(st.integers(min_value=1, max_value=10_000)),
        m=draw(st.sampled_from([2, 4])),
        util_range=draw(st.sampled_from([(0.05, 0.2), (0.1, 0.4), (0.2, 0.5)])),
        behavior=behavior,
        monitor=monitor,
        monitor_arg=draw(st.sampled_from([0.25, 0.5, 0.75])),
        horizon=1.0,
        use_virtual_time=use_virtual_time,
        record_intervals=draw(st.booleans()),
        monitor_latency=draw(st.sampled_from([0.0, 0.001])),
        zero_every=draw(st.sampled_from([0, 3, 5])),
        level_d_tasks=draw(st.sampled_from([0, 2])),
    )


@given(diff_scenarios())
@settings(max_examples=25, deadline=None)
def test_dispatchers_trace_equivalent(sc):
    result = compare_dispatchers(sc)
    assert result.equal, (
        f"dispatchers diverged on [{', '.join(result.mismatched)}]: {sc.label()}"
    )
