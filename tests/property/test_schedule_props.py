"""Property tests: schedule invariants on randomly generated task systems.

Random small level-C task sets (with random per-job execution times that
may overrun — the SVO model) are simulated under random recovery
slowdowns; structural invariants must hold for every generated schedule.
"""

import collections

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.virtual_time import SpeedProfile
from repro.model.behavior import ExecutionBehavior
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.kernel import KernelConfig, MC2Kernel

HORIZON = 30.0


@st.composite
def systems(draw):
    m = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    exec_tables = {}
    for tid in range(n):
        period = draw(st.floats(min_value=1.0, max_value=8.0))
        pwcet = draw(st.floats(min_value=0.1, max_value=period))
        y = draw(st.floats(min_value=0.0, max_value=period))
        tasks.append(
            Task(task_id=tid, level=L.C, period=period,
                 pwcets={L.C: pwcet}, relative_pp=y, tolerance=1.0)
        )
        # Per-job execution times: sometimes overrunning the PWCET.
        exec_tables[tid] = draw(
            st.lists(st.floats(min_value=0.05, max_value=2.0 * pwcet),
                     min_size=1, max_size=8)
        )
    speed_changes = draw(
        st.lists(
            st.tuples(st.floats(min_value=0.5, max_value=HORIZON - 1.0),
                      st.floats(min_value=0.1, max_value=1.0)),
            max_size=3,
        )
    )
    speed_changes = sorted(speed_changes)
    return m, tasks, exec_tables, speed_changes


class TableBehavior(ExecutionBehavior):
    def __init__(self, tables):
        self.tables = tables

    def exec_time(self, task, job_index, release):
        xs = self.tables[task.task_id]
        return xs[job_index % len(xs)]


def simulate_system(system):
    m, tasks, exec_tables, speed_changes = system
    ts = TaskSet(tasks, m=m)
    kernel = MC2Kernel(ts, behavior=TableBehavior(exec_tables),
                       config=KernelConfig(record_intervals=True))
    kernel.start()
    for t_change, s in speed_changes:
        kernel.run_until(t_change)
        kernel.change_speed(s, kernel.engine.now)
    kernel.run_until(HORIZON)
    trace = kernel.finish()
    return ts, trace


@given(systems())
@settings(max_examples=60, deadline=None)
def test_cpu_and_job_exclusivity(system):
    _, trace = simulate_system(system)
    by_cpu = collections.defaultdict(list)
    by_job = collections.defaultdict(list)
    for iv in trace.intervals:
        by_cpu[iv.cpu].append(iv)
        by_job[(iv.task_id, iv.job_index)].append(iv)
    for ivs in list(by_cpu.values()) + list(by_job.values()):
        ivs.sort(key=lambda iv: iv.start)
        for a, b in zip(ivs, ivs[1:]):
            assert a.end <= b.start + 1e-9


@given(systems())
@settings(max_examples=60, deadline=None)
def test_completed_jobs_got_exactly_their_demand(system):
    _, trace = simulate_system(system)
    executed = collections.defaultdict(float)
    for iv in trace.intervals:
        executed[(iv.task_id, iv.job_index)] += iv.length
    for rec in trace.completed():
        assert abs(executed[(rec.task_id, rec.index)] - rec.exec_time) < 1e-6


@given(systems())
@settings(max_examples=60, deadline=None)
def test_releases_respect_virtual_separation(system):
    """Eq. 5 holds under arbitrary injected speed changes."""
    ts, trace = simulate_system(system)
    profile = SpeedProfile.from_segments(0.0, trace.speed_changes)
    by_task = collections.defaultdict(list)
    for rec in trace.jobs:
        by_task[rec.task_id].append(rec)
    for tid, recs in by_task.items():
        recs.sort(key=lambda r: r.index)
        for a, b in zip(recs, recs[1:]):
            sep = profile.v(b.release) - profile.v(a.release)
            assert sep >= ts[tid].period - 1e-6


@given(systems())
@settings(max_examples=60, deadline=None)
def test_work_conservation_for_level_c(system):
    """No eligible job waits while a CPU idles.

    Reconstructed from intervals: at each job release instant, if fewer
    jobs run than there are CPUs, then every non-running pending job must
    be precedence-blocked (an earlier job of the same task pending).
    """
    ts, trace = simulate_system(system)
    m = ts.m
    events = sorted({r.release for r in trace.jobs if r.release < HORIZON - 1e-3})
    recs = list(trace.jobs)
    for t in events:
        probe = t + 1e-7
        pending = [r for r in recs
                   if r.release <= probe and (r.completion is None or r.completion > probe)]
        running = set()
        for iv in trace.intervals:
            if iv.start <= probe < iv.end:
                running.add((iv.task_id, iv.job_index))
        if len(running) >= m:
            continue
        heads = {}
        for r in pending:
            cur = heads.get(r.task_id)
            if cur is None or r.index < cur:
                heads[r.task_id] = r.index
        for r in pending:
            jid = (r.task_id, r.index)
            if jid in running:
                continue
            assert r.index != heads[r.task_id] or len(running) >= m, (
                f"eligible job {jid} idle at {probe} with {len(running)}/{m} CPUs busy"
            )


@given(systems())
@settings(max_examples=40, deadline=None)
def test_deterministic_replay(system):
    ts1, trace1 = simulate_system(system)
    ts2, trace2 = simulate_system(system)
    assert len(trace1.jobs) == len(trace2.jobs)
    for a, b in zip(trace1.jobs, trace2.jobs):
        assert (a.task_id, a.index, a.release, a.completion) == (
            b.task_id, b.index, b.release, b.completion
        )
