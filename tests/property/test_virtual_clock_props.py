"""Property tests for the stateful VirtualClock (Algorithm 1).

`test_virtual_time_props.py` exercises :class:`SpeedProfile` — the
*historical* map.  This suite drives the three-word kernel state machine
itself through arbitrary piecewise speed schedules and pins:

* ``act_to_virt`` / ``virt_to_act`` are mutual inverses on the live
  clock (exact over ``Fraction``, tight over ``float``);
* the actual->virtual map stays strictly monotone across any sequence
  of speed changes;
* re-installing the current speed is *idempotent*: it never moves the
  map, no matter how often or when it happens;
* ``change_speed`` is continuous: the virtual time it returns is
  exactly ``v`` at the change instant, and the clock's history always
  replays into a self-consistent :class:`SpeedProfile`.
"""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.virtual_time import VirtualClock

# Arbitrary piecewise schedules: (time delta, new speed) pairs with
# recovery-range speeds 0 < s <= 1.  Zero deltas are legal (two changes
# at the same instant) and exercise the right-continuity tie-break.
float_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    ),
    min_size=0,
    max_size=8,
)

fraction_schedules = st.lists(
    st.tuples(
        st.fractions(min_value=Fraction(0), max_value=Fraction(40)),
        st.fractions(min_value=Fraction(1, 16), max_value=Fraction(1)),
    ),
    min_size=0,
    max_size=8,
)


def replay(schedule, zero):
    """Drive a fresh clock through *schedule*; returns (clock, end time)."""
    clk = VirtualClock(zero)
    t = zero
    for dt, s in schedule:
        t = t + dt
        clk.change_speed(s, t)
    return clk, t


# ----------------------------------------------------------------------
# Roundtrip
# ----------------------------------------------------------------------
@given(float_schedules, st.floats(min_value=0.0, max_value=100.0))
def test_roundtrip_act_virt_act(schedule, dt):
    clk, t = replay(schedule, 0.0)
    act = t + dt
    assert clk.virt_to_act(clk.act_to_virt(act)) == pytest.approx(act, abs=1e-6)


@given(float_schedules, st.floats(min_value=0.0, max_value=100.0))
def test_roundtrip_virt_act_virt(schedule, dv):
    clk, _ = replay(schedule, 0.0)
    virt = clk.last_virt + dv
    assert clk.act_to_virt(clk.virt_to_act(virt)) == pytest.approx(virt, abs=1e-6)


@given(fraction_schedules, st.integers(min_value=0, max_value=400))
def test_roundtrip_is_exact_over_fractions(schedule, num):
    """The kernel equations are algebraic identities, not approximations."""
    clk, t = replay(schedule, Fraction(0))
    act = t + Fraction(num, 7)
    assert clk.virt_to_act(clk.act_to_virt(act)) == act
    virt = clk.last_virt + Fraction(num, 11)
    assert clk.act_to_virt(clk.virt_to_act(virt)) == virt


# ----------------------------------------------------------------------
# Monotonicity
# ----------------------------------------------------------------------
@given(fraction_schedules,
       st.fractions(min_value=Fraction(0), max_value=Fraction(100)),
       st.fractions(min_value=Fraction(1, 1000), max_value=Fraction(10)))
def test_act_to_virt_strictly_monotone(schedule, offset, gap):
    clk, t = replay(schedule, Fraction(0))
    a = t + offset
    assert clk.act_to_virt(a + gap) > clk.act_to_virt(a)


@given(fraction_schedules)
def test_virtual_time_never_decreases_across_changes(schedule):
    """last_virt is non-decreasing through any legal replay."""
    clk = VirtualClock(Fraction(0))
    t = Fraction(0)
    prev_virt = clk.last_virt
    for dt, s in schedule:
        t += dt
        virt = clk.change_speed(s, t)
        assert virt >= prev_virt
        prev_virt = virt


@given(fraction_schedules,
       st.fractions(min_value=Fraction(0), max_value=Fraction(100)))
def test_speed_bounds_sandwich_the_map(schedule, offset):
    """Between any two instants, dv/dt lies within [min speed, 1]."""
    clk, t = replay(schedule, Fraction(0))
    lo = min([Fraction(1)] + [s for _, s in schedule])
    a, b = t, t + offset
    dv = clk.act_to_virt(b) - clk.act_to_virt(a)
    assert lo * (b - a) <= dv <= (b - a)


# ----------------------------------------------------------------------
# Speed-change idempotence
# ----------------------------------------------------------------------
@given(fraction_schedules,
       st.fractions(min_value=Fraction(0), max_value=Fraction(20)),
       st.integers(min_value=1, max_value=4))
def test_reinstalling_current_speed_never_moves_the_map(schedule, dt, repeats):
    """change_speed(current_speed, now) is a no-op on the mapping."""
    clk, t = replay(schedule, Fraction(0))
    now = t + dt
    probes = [now, now + Fraction(3, 2), now + 40]
    before = [clk.act_to_virt(p) for p in probes]
    for _ in range(repeats):
        clk.change_speed(clk.speed, now)
    assert [clk.act_to_virt(p) for p in probes] == before


@given(fraction_schedules,
       st.fractions(min_value=Fraction(1, 16), max_value=Fraction(1)))
def test_same_instant_changes_last_one_wins(schedule, s_final):
    """N changes at one instant == just the final change, for the future."""
    clk_many, t = replay(schedule, Fraction(0))
    for s in (Fraction(1, 2), Fraction(1, 3), s_final):
        clk_many.change_speed(s, t)
    clk_once, _ = replay(schedule, Fraction(0))
    clk_once.change_speed(s_final, t)
    for probe in (t, t + Fraction(5, 4), t + 9):
        assert clk_many.act_to_virt(probe) == clk_once.act_to_virt(probe)


@given(fraction_schedules, st.fractions(min_value=Fraction(0), max_value=Fraction(20)))
def test_change_speed_is_continuous(schedule, dt):
    """The returned virtual time equals v just before the change."""
    clk, t = replay(schedule, Fraction(0))
    now = t + dt
    v_before = clk.act_to_virt(now)
    v_change = clk.change_speed(Fraction(1, 3), now)
    assert v_change == v_before
    assert clk.act_to_virt(now) == v_before  # v is continuous at the knot


# ----------------------------------------------------------------------
# History / profile consistency
# ----------------------------------------------------------------------
@given(fraction_schedules,
       st.fractions(min_value=Fraction(0), max_value=Fraction(100)))
def test_history_replays_to_consistent_profile(schedule, offset):
    """profile() validates (internal consistency) and agrees with the clock."""
    clk, t = replay(schedule, Fraction(0))
    prof = clk.profile()  # SpeedProfile.__init__ re-checks every knot
    probe = t + offset
    assert prof.v(probe) == clk.act_to_virt(probe)
    assert prof.inverse(clk.act_to_virt(probe)) == probe
    assert prof.speed_at(probe) == clk.speed
    assert prof.minimum_speed() == min([Fraction(1)] + [s for _, s in schedule])


@given(float_schedules)
def test_history_records_every_change(schedule):
    clk, _ = replay(schedule, 0.0)
    assert len(clk.history) == len(schedule) + 1  # +1 for initialization
    assert clk.history[0].speed == 1.0
    assert [c.speed for c in clk.history[1:]] == [s for _, s in schedule]
    assert clk.is_normal_speed == (clk.speed == 1.0)


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
@given(fraction_schedules)
def test_past_queries_and_backward_changes_raise(schedule):
    clk, t = replay(schedule, Fraction(1))
    eps = Fraction(1, 1000)
    with pytest.raises(ValueError, match="predates"):
        clk.act_to_virt(clk.last_act - eps)
    with pytest.raises(ValueError, match="predates"):
        clk.virt_to_act(clk.last_virt - eps)
    with pytest.raises(ValueError, match="backwards"):
        clk.change_speed(Fraction(1, 2), clk.last_act - eps)


@given(st.fractions(min_value=Fraction(101, 100), max_value=Fraction(5)))
def test_speedup_rejected_unless_explicitly_allowed(speed):
    clk = VirtualClock(Fraction(0))
    with pytest.raises(ValueError, match="must be <= 1"):
        clk.change_speed(speed, Fraction(1))
    permissive = VirtualClock(Fraction(0), allow_speedup=True)
    permissive.change_speed(speed, Fraction(1))
    assert permissive.speed == speed


@given(st.fractions(min_value=Fraction(-3), max_value=Fraction(0)))
def test_nonpositive_speed_rejected(speed):
    clk = VirtualClock(Fraction(0))
    with pytest.raises(ValueError, match="must be > 0"):
        clk.change_speed(speed, Fraction(1))
