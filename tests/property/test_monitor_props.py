"""Property tests for the monitor state machine (Algorithm 2, Theorem 1).

We generate random but *consistent* job timelines (releases, completions,
PPs), replay them through the monitor in completion order, and check the
paper's correctness claims against ground truth recomputed directly from
the timeline:

* **Theorem 1 soundness**: whenever the monitor exits recovery having
  accepted candidate idle instant ``c``, every job pending at ``c``
  (ground truth) met its response-time tolerance.
* The clock is only ever slowed while in recovery mode, and every
  slowdown is eventually followed by a restore (given the generated
  timeline drains).
"""

import dataclasses
from typing import List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import CompletionReport, SimpleMonitor
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task

XI = 2.0
Y = 3.0


def make_task(tid):
    return Task(task_id=tid, level=L.C, period=4.0, pwcets={L.C: 1.0},
                relative_pp=Y, tolerance=XI)


@dataclasses.dataclass
class TimelineJob:
    tid: int
    k: int
    release: float
    completion: float
    actual_pp: Optional[float]

    @property
    def meets(self):
        if self.actual_pp is None:
            return True
        return self.completion <= self.actual_pp + XI


@st.composite
def timelines(draw):
    """Jobs with increasing releases and bounded lifetimes."""
    n = draw(st.integers(min_value=1, max_value=12))
    jobs: List[TimelineJob] = []
    t = 0.0
    per_task_next_k = {}
    for _ in range(n):
        t += draw(st.floats(min_value=0.1, max_value=3.0))
        tid = draw(st.integers(min_value=0, max_value=2))
        k = per_task_next_k.get(tid, 0)
        per_task_next_k[tid] = k + 1
        lifetime = draw(st.floats(min_value=0.1, max_value=12.0))
        completion = t + lifetime
        # PP resolved iff the job completed after it.
        pp = t + Y if completion > t + Y else None
        jobs.append(TimelineJob(tid=tid, k=k, release=t, completion=completion,
                                actual_pp=pp))
    return jobs


class Recorder:
    def __init__(self):
        self.calls = []

    def change_speed(self, s, now):
        self.calls.append((now, s))


def replay(jobs):
    """Feed the timeline to a SIMPLE monitor; return exit-time checks."""
    tasks = {tid: make_task(tid) for tid in {j.tid for j in jobs}}
    ctl = Recorder()
    mon = SimpleMonitor(ctl, s=0.5)
    events = []
    for j in jobs:
        events.append((j.release, 0, j))
        events.append((j.completion, 1, j))
    events.sort(key=lambda e: (e[0], e[1]))
    exits = []  # (exit_time, idle_cand at exit)
    for time_, kind, j in events:
        if kind == 0:
            mon.on_job_release((j.tid, j.k))
        else:
            # Ground-truth "ready queue empty": no other job is released
            # and incomplete at this completion instant.
            queue_empty = not any(
                o is not j and o.release <= time_ < o.completion for o in jobs
            )
            was_recovering = mon.recovery_mode
            cand = mon.idle_cand
            mon.on_job_complete(
                CompletionReport(
                    task=tasks[j.tid], job_index=j.k, release=j.release,
                    actual_pp=j.actual_pp, comp_time=j.completion,
                    queue_empty=queue_empty,
                )
            )
            if was_recovering and not mon.recovery_mode:
                # Monitor accepted some candidate; reconstruct which: it is
                # whatever idle_cand was right before this completion, or
                # this completion itself if it re-established one.
                accepted = mon.idle_cand if mon.idle_cand is not None else cand
                exits.append((j.completion, accepted))
    return mon, ctl, exits


@given(timelines())
@settings(max_examples=300)
def test_theorem1_exits_only_at_idle_normal_instants(jobs):
    mon, ctl, exits = replay(jobs)
    for exit_time, cand in exits:
        assert cand is not None
        # Ground truth: every job pending at the accepted candidate met
        # its tolerance (Def. 2 via Theorem 1).
        for j in jobs:
            if j.release <= cand < j.completion:
                assert j.meets, (
                    f"monitor exited recovery at {exit_time} accepting idle "
                    f"instant {cand}, but job ({j.tid},{j.k}) pending there "
                    f"missed its tolerance"
                )


@given(timelines())
@settings(max_examples=300)
def test_slowdowns_only_on_genuine_misses(jobs):
    mon, ctl, _ = replay(jobs)
    slowdowns = [c for c in ctl.calls if c[1] < 1.0]
    any_miss = any(not j.meets for j in jobs)
    if not any_miss:
        assert slowdowns == []
    else:
        assert len(slowdowns) >= 1


@given(timelines())
@settings(max_examples=300)
def test_every_restore_follows_a_slowdown(jobs):
    _, ctl, _ = replay(jobs)
    depth = 0
    for _, s in ctl.calls:
        if s < 1.0:
            depth += 1
        else:
            assert depth > 0, "change_speed(1) without a preceding slowdown"
            depth = 0


@given(timelines())
@settings(max_examples=300)
def test_monitor_drains_when_all_jobs_complete(jobs):
    """After the full timeline (all jobs complete), pend_now is empty."""
    mon, _, _ = replay(jobs)
    assert mon.pend_now == set()
