"""Property tests: provenance manifest identity and canonical digests.

Hypothesis pins the invariants ``repro-mc2 verify`` and the golden
manifest corpus rest on:

* a manifest round-trips ``canonical() -> json.loads -> from_dict``
  exactly, and its content address (``key()``) survives the trip;
* :func:`~repro.io.canonical.doc_digest` is insertion-order blind —
  the same mapping built in any key order digests identically — and
  collision-sensitive to any value change;
* the manifest key is owner/code/artifact-name *invariant* (the same
  cells produce the same key no matter which workers ran them) but
  cell-*sensitive* (any digest, key, order, or count change moves it).
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.canonical import canonical_json, doc_digest, sha256_hex
from repro.provenance import ProvenanceManifest

hex_digest = st.text(alphabet="0123456789abcdef", min_size=64, max_size=64)

json_scalars = st.one_of(
    st.booleans(),
    st.none(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
json_docs = st.dictionaries(st.text(max_size=10), json_scalars, max_size=8)


@st.composite
def manifests(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    cells = tuple(
        (draw(hex_digest), draw(hex_digest)) for _ in range(n)
    )
    return ProvenanceManifest(
        kind=draw(st.sampled_from(["sweep", "faults"])),
        campaign=draw(hex_digest),
        artifact=draw(st.sampled_from(["merged.json", "out.json"])),
        artifact_sha256=draw(hex_digest),
        cells=cells,
        kernel={"backends": draw(st.lists(st.sampled_from(
            ["reference", "soa"]), max_size=2, unique=True))},
        code={"package": "1", "source_sha256": draw(hex_digest)},
        owners=tuple(
            {"index": i, "shard": draw(hex_digest), "owner": draw(
                st.text(max_size=8))}
            for i in range(draw(st.integers(min_value=0, max_value=3)))
        ),
    )


class TestRoundTrip:
    @given(manifests())
    @settings(max_examples=50)
    def test_canonical_round_trip_is_exact(self, manifest):
        doc = json.loads(manifest.canonical())
        back = ProvenanceManifest.from_dict(doc)
        assert back == manifest
        assert back.key() == manifest.key()
        assert back.canonical() == manifest.canonical()

    @given(manifests())
    @settings(max_examples=50)
    def test_recorded_key_matches_content(self, manifest):
        doc = manifest.to_dict()
        assert doc["key"] == sha256_hex(canonical_json(
            manifest._identity_doc()))


class TestDigestStability:
    @given(json_docs, st.randoms(use_true_random=False))
    @settings(max_examples=100)
    def test_digest_blind_to_insertion_order(self, doc, rng):
        items = list(doc.items())
        rng.shuffle(items)
        assert doc_digest(dict(items)) == doc_digest(doc)

    @given(json_docs, st.text(max_size=10))
    @settings(max_examples=100)
    def test_digest_sensitive_to_any_change(self, doc, key):
        changed = dict(doc)
        changed[key] = "sentinel-not-" + str(doc.get(key))
        assert doc_digest(changed) != doc_digest(doc)


class TestKeyInvariance:
    @given(manifests(), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50)
    def test_key_invariant_to_attribution_metadata(self, manifest, seed):
        """Same cells ⇒ same key, whatever workers/code/name produced
        them — the shard interleaving of a distributed run only moves
        ``owners``, never the identity."""
        rng = random.Random(seed)
        owners = [
            {"index": i, "shard": "%064x" % rng.getrandbits(256),
             "owner": f"w{rng.randrange(100)}"}
            for i in range(rng.randrange(4))
        ]
        relabeled = ProvenanceManifest(
            kind=manifest.kind,
            campaign=manifest.campaign,
            artifact="elsewhere.json",
            artifact_sha256=manifest.artifact_sha256,
            cells=manifest.cells,
            kernel=manifest.kernel,
            code={"package": "2", "source_sha256": "e" * 64},
            owners=tuple(owners),
        )
        assert relabeled.key() == manifest.key()

    @given(manifests())
    @settings(max_examples=50)
    def test_key_sensitive_to_cells(self, manifest):
        key = manifest.key()
        k0, d0 = manifest.cells[0]
        forged_digest = manifest.cells[:0] + (
            (k0, "0" * 64 if d0 != "0" * 64 else "1" * 64),
        ) + manifest.cells[1:]
        assert ProvenanceManifest(
            kind=manifest.kind, campaign=manifest.campaign,
            artifact=manifest.artifact,
            artifact_sha256=manifest.artifact_sha256,
            cells=forged_digest, kernel=manifest.kernel,
        ).key() != key
        if len(manifest.cells) > 1 and manifest.cells[0] != manifest.cells[-1]:
            reordered = tuple(reversed(manifest.cells))
            assert ProvenanceManifest(
                kind=manifest.kind, campaign=manifest.campaign,
                artifact=manifest.artifact,
                artifact_sha256=manifest.artifact_sha256,
                cells=reordered, kernel=manifest.kernel,
            ).key() != key
        truncated = manifest.cells[:-1]
        assert ProvenanceManifest(
            kind=manifest.kind, campaign=manifest.campaign,
            artifact=manifest.artifact,
            artifact_sha256=manifest.artifact_sha256,
            cells=truncated, kernel=manifest.kernel,
        ).key() != key
