"""Property tests: canonical TrafficSpec JSON round-trips exactly.

Hypothesis draws arbitrary well-formed traffic specs (every source kind,
every server shape) and checks that dict/JSON round-trips reproduce the
spec *and* its canonical text byte-for-byte — the invariant the sweep
cache keys on.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.traffic import (
    Arrival,
    DiurnalCurveSource,
    MMPPSource,
    PoissonSource,
    ServerSpec,
    TraceReplaySource,
    TrafficFlow,
    TrafficSpec,
    arrivals_ndjson,
    traffic_from_dict,
    traffic_to_dict,
)

finite_rate = st.floats(min_value=0.1, max_value=5000.0,
                        allow_nan=False, allow_infinity=False)
demand_mean = st.floats(min_value=1e-5, max_value=0.1,
                        allow_nan=False, allow_infinity=False)
demand_kind = st.sampled_from(["exp", "fixed"])
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def poisson_sources(draw):
    return PoissonSource(
        rate=draw(finite_rate), mean_demand=draw(demand_mean),
        demand=draw(demand_kind), seed=draw(seeds),
    )


@st.composite
def mmpp_sources(draw):
    n = draw(st.integers(min_value=2, max_value=4))
    rates = tuple(
        draw(st.floats(min_value=0.0, max_value=5000.0,
                       allow_nan=False, allow_infinity=False))
        for _ in range(n)
    )
    dwells = tuple(
        draw(st.floats(min_value=0.01, max_value=5.0,
                       allow_nan=False, allow_infinity=False))
        for _ in range(n)
    )
    return MMPPSource(
        rates=rates, dwells=dwells, mean_demand=draw(demand_mean),
        demand=draw(demand_kind), seed=draw(seeds),
        start_state=draw(st.integers(min_value=0, max_value=n - 1)),
    )


@st.composite
def diurnal_sources(draw):
    base = draw(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False))
    peak = base + draw(st.floats(min_value=0.1, max_value=2000.0,
                                 allow_nan=False, allow_infinity=False))
    return DiurnalCurveSource(
        base_rate=base, peak_rate=peak,
        period=draw(st.floats(min_value=0.05, max_value=10.0,
                              allow_nan=False, allow_infinity=False)),
        mean_demand=draw(demand_mean), demand=draw(demand_kind),
        seed=draw(seeds),
        phase=draw(st.floats(min_value=0.0, max_value=10.0,
                             allow_nan=False, allow_infinity=False)),
    )


@st.composite
def replay_sources(draw):
    arrivals = draw(st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=0, max_size=10,
    ))
    return TraceReplaySource.from_arrivals(
        [Arrival(t, d) for t, d in sorted(arrivals)]
    )


@st.composite
def server_specs(draw):
    period = draw(st.floats(min_value=0.001, max_value=1.0,
                            allow_nan=False, allow_infinity=False))
    budget = period * draw(st.floats(min_value=0.01, max_value=1.0,
                                     allow_nan=False, allow_infinity=False))
    tolerance = draw(st.one_of(
        st.none(),
        st.floats(min_value=0.0, max_value=2.0,
                  allow_nan=False, allow_infinity=False),
    ))
    return ServerSpec(
        period=period, budget=budget,
        level=draw(st.sampled_from(["C", "D"])),
        policy=draw(st.sampled_from(["polling", "deferrable"])),
        count=draw(st.integers(min_value=1, max_value=4)),
        tolerance=tolerance,
    )


any_source = st.one_of(
    poisson_sources(), mmpp_sources(), diurnal_sources(), replay_sources()
)


@st.composite
def traffic_specs(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    return TrafficSpec(flows=tuple(
        TrafficFlow(source=draw(any_source), server=draw(server_specs()))
        for _ in range(n)
    ))


@given(traffic_specs())
@settings(max_examples=60, deadline=None)
def test_canonical_json_round_trips_exactly(spec):
    doc = traffic_to_dict(spec)
    back = traffic_from_dict(doc)
    assert back == spec
    assert back.canonical_json() == spec.canonical_json()
    # The canonical text itself round-trips through plain JSON.
    assert traffic_from_dict(json.loads(spec.canonical_json())) == spec


@given(traffic_specs())
@settings(max_examples=30, deadline=None)
def test_round_tripped_spec_expands_identically(spec):
    back = traffic_from_dict(traffic_to_dict(spec))
    for a, b in zip(spec.flows, back.flows):
        assert arrivals_ndjson(a.source, 0.5) == arrivals_ndjson(b.source, 0.5)
