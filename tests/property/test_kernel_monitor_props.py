"""End-to-end property tests: kernel + monitor vs. ground truth.

Random level-C systems with random overruns run through the *real*
kernel with a SIMPLE monitor; afterwards every monitor decision is
checked against the brute-force trace checker
(:mod:`repro.analysis.trace_check`):

* every closed recovery episode ends at a genuine idle normal instant
  (Theorem 1, end-to-end, not just on synthetic report streams);
* recovery only ever starts when some job truly missed its tolerance;
* if the run ends outside recovery, the virtual clock is at speed 1.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.trace_check import job_misses_tolerance, verify_monitor_decisions
from repro.core.monitor import SimpleMonitor
from repro.core.tolerance import fixed_tolerances
from repro.model.behavior import ExecutionBehavior
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.kernel import KernelConfig, MC2Kernel

HORIZON = 40.0


@st.composite
def monitored_systems(draw):
    m = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    exec_tables = {}
    for tid in range(n):
        period = draw(st.floats(min_value=2.0, max_value=8.0))
        u = draw(st.floats(min_value=0.1, max_value=0.6))
        pwcet = u * period
        y = draw(st.floats(min_value=0.5, max_value=period))
        tasks.append(Task(task_id=tid, level=L.C, period=period,
                          pwcets={L.C: pwcet}, relative_pp=y))
        # Mostly normal execution with occasional overruns.
        exec_tables[tid] = draw(
            st.lists(st.floats(min_value=0.3 * pwcet, max_value=2.5 * pwcet),
                     min_size=1, max_size=6)
        )
    xi = draw(st.floats(min_value=0.5, max_value=4.0))
    s = draw(st.sampled_from([0.2, 0.5, 0.8]))
    return m, tasks, exec_tables, xi, s


class TableBehavior(ExecutionBehavior):
    def __init__(self, tables):
        self.tables = tables

    def exec_time(self, task, job_index, release):
        xs = self.tables[task.task_id]
        return xs[job_index % len(xs)]


def run_system(system):
    m, tasks, exec_tables, xi, s = system
    ts = fixed_tolerances(TaskSet(tasks, m=m), xi)
    kernel = MC2Kernel(ts, behavior=TableBehavior(exec_tables),
                       config=KernelConfig())
    mon = SimpleMonitor(kernel, s=s)
    kernel.attach_monitor(mon)
    trace = kernel.run(HORIZON)
    return ts, kernel, mon, trace


@given(monitored_systems())
@settings(max_examples=50, deadline=None)
def test_episode_exits_are_idle_normal_instants(system):
    ts, kernel, mon, trace = run_system(system)
    verdict = verify_monitor_decisions(mon, trace, ts)
    assert verdict.ok, verdict.violations


@given(monitored_systems())
@settings(max_examples=50, deadline=None)
def test_recovery_starts_only_on_real_misses(system):
    ts, kernel, mon, trace = run_system(system)
    any_miss = any(job_misses_tolerance(rec, ts) for rec in trace.jobs)
    if mon.episodes:
        assert any_miss, "recovery started but no job ever missed (ground truth)"
    if not any_miss:
        assert mon.miss_count == 0


@given(monitored_systems())
@settings(max_examples=50, deadline=None)
def test_clock_normal_when_out_of_recovery(system):
    ts, kernel, mon, trace = run_system(system)
    if not mon.recovery_mode:
        assert kernel.clock.is_normal_speed
    # And the monitor's miss count matches ground truth exactly.
    truth = sum(1 for rec in trace.jobs if job_misses_tolerance(rec, ts))
    assert mon.miss_count == truth
