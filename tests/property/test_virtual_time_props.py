"""Property tests for the virtual clock (eq. 4 invariants)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.virtual_time import SpeedProfile, VirtualClock

# A random piecewise speed schedule: positive time deltas and speeds in
# (0, 1], as the paper requires during recovery.
speed_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    ),
    min_size=0,
    max_size=8,
)


def build_profile(schedule):
    t = 0.0
    segs = []
    for dt, s in schedule:
        t += dt
        segs.append((t, s))
    return SpeedProfile.from_segments(0.0, segs), t


@given(speed_schedules, st.floats(min_value=0.0, max_value=200.0))
def test_v_is_monotone_nondecreasing(schedule, t):
    prof, _ = build_profile(schedule)
    assert prof.v(t + 1.0) > prof.v(t)


@given(speed_schedules, st.floats(min_value=0.0, max_value=200.0))
def test_v_never_exceeds_actual_time(schedule, t):
    """With s <= 1 everywhere, v(t) <= t (virtual time never runs ahead)."""
    prof, _ = build_profile(schedule)
    assert prof.v(t) <= t + 1e-9


@given(speed_schedules, st.floats(min_value=0.0, max_value=200.0),
       st.floats(min_value=0.0, max_value=10.0))
def test_v_is_1_lipschitz(schedule, t, dt):
    """v advances at most as fast as actual time (s <= 1)."""
    prof, _ = build_profile(schedule)
    assert prof.v(t + dt) - prof.v(t) <= dt + 1e-9


@given(speed_schedules, st.floats(min_value=0.0, max_value=200.0))
def test_inverse_roundtrip(schedule, t):
    prof, _ = build_profile(schedule)
    assert prof.inverse(prof.v(t)) == pytest.approx(t, abs=1e-6)


@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=100),
                  st.fractions(min_value=Fraction(1, 10), max_value=Fraction(1))),
        min_size=0, max_size=6,
    ),
    st.integers(min_value=0, max_value=500),
)
def test_fraction_roundtrip_is_exact(schedule, t_num):
    """Over Fractions the inverse is exact, not approximate."""
    t = Fraction(0)
    segs = []
    for dt, s in schedule:
        t += dt
        segs.append((t, s))
    prof = SpeedProfile.from_segments(Fraction(0), segs)
    q = Fraction(t_num, 7)
    assert prof.inverse(prof.v(q)) == q


@given(speed_schedules)
def test_clock_agrees_with_profile(schedule):
    """Replaying the schedule through VirtualClock matches SpeedProfile."""
    clk = VirtualClock(0.0)
    t = 0.0
    for dt, s in schedule:
        t += dt
        clk.change_speed(s, t)
    prof, _ = build_profile(schedule)
    for probe in (t, t + 0.5, t + 10.0):
        assert clk.act_to_virt(probe) == pytest.approx(prof.v(probe), rel=1e-9, abs=1e-9)


@given(speed_schedules)
def test_minimum_speed_matches_schedule(schedule):
    prof, _ = build_profile(schedule)
    expected = min([1.0] + [s for _, s in schedule])
    assert prof.minimum_speed() == pytest.approx(expected)
