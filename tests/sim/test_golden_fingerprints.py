"""Golden-fingerprint regression corpus for the simulator.

30 fixed :class:`~repro.sim.diffcheck.DiffScenario` cases spanning the
interesting axes — the three paper overloads under SIMPLE and ADAPTIVE
recovery, steady state, sustained overrun, level-D background load,
monitor latency, zeroed demand, open-system traffic (Poisson/MMPP/
diurnal server workloads), both platform sizes, virtual time on and
off — each pinned to the sha256 of its full behavioural fingerprint
(jobs, intervals, speed changes, preemptions, migrations, event counts,
misses, episodes) under the default (incremental) dispatcher.

Any change to scheduler behaviour, event ordering, tie-breaking, or the
fingerprint itself shows up as a digest mismatch naming the scenario.
Intentional behaviour changes re-pin the corpus with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/sim/test_golden_fingerprints.py

which rewrites ``tests/sim/golden/fingerprints.json`` (the diff of that
file then documents the blast radius in review).
"""

import json
import os
import pathlib

import pytest

from repro.sim.diffcheck import DiffScenario, fingerprint_digest, run_dispatcher

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "fingerprints.json"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

# One line per scenario; labels (DiffScenario.label()) key the golden file.
CORPUS = [
    # The paper's three overload scenarios under SIMPLE recovery.
    DiffScenario(seed=101, m=2, behavior="SHORT", monitor="simple", monitor_arg=0.5),
    DiffScenario(seed=102, m=2, behavior="LONG", monitor="simple", monitor_arg=0.5),
    DiffScenario(seed=103, m=2, behavior="DOUBLE", monitor="simple", monitor_arg=0.5),
    # ... and under ADAPTIVE recovery.
    DiffScenario(seed=104, m=2, behavior="SHORT", monitor="adaptive", monitor_arg=0.5),
    DiffScenario(seed=105, m=2, behavior="LONG", monitor="adaptive", monitor_arg=0.5),
    DiffScenario(seed=106, m=2, behavior="DOUBLE", monitor="adaptive", monitor_arg=0.5),
    # Steady state: no overload, with and without virtual time.
    DiffScenario(seed=107, m=2, behavior="constant", monitor="null"),
    DiffScenario(seed=108, m=2, behavior="constant", monitor="null",
                 use_virtual_time=False),
    # Sustained overrun (1.25x level-C PWCETs) under both monitors.
    DiffScenario(seed=109, m=2, behavior="overrun", monitor="simple",
                 monitor_arg=0.25),
    DiffScenario(seed=110, m=2, behavior="overrun", monitor="adaptive",
                 monitor_arg=1.0),
    # Larger platform, the s / a extremes.
    DiffScenario(seed=111, m=4, behavior="SHORT", monitor="simple",
                 monitor_arg=0.75),
    DiffScenario(seed=112, m=4, behavior="LONG", monitor="adaptive",
                 monitor_arg=0.25),
    # Delayed overload detection (monitor latency).
    DiffScenario(seed=113, m=2, behavior="SHORT", monitor="simple",
                 monitor_arg=0.5, monitor_latency=0.001),
    DiffScenario(seed=114, m=2, behavior="LONG", monitor="adaptive",
                 monitor_arg=0.5, monitor_latency=0.001),
    # Jobs with zeroed demand interleaved into recovery.
    DiffScenario(seed=115, m=2, behavior="SHORT", monitor="simple",
                 monitor_arg=0.5, zero_every=3),
    DiffScenario(seed=116, m=2, behavior="DOUBLE", monitor="adaptive",
                 monitor_arg=0.5, zero_every=5),
    # Level-D background load sharing the platform.
    DiffScenario(seed=117, m=2, behavior="SHORT", monitor="simple",
                 monitor_arg=0.5, level_d_tasks=2),
    DiffScenario(seed=118, m=2, behavior="LONG", monitor="adaptive",
                 monitor_arg=0.5, level_d_tasks=2),
    DiffScenario(seed=119, m=2, behavior="DOUBLE", monitor="simple",
                 monitor_arg=0.25, level_d_tasks=2, monitor_latency=0.001),
    # Monitor armed but never triggered.
    DiffScenario(seed=120, m=2, behavior="constant", monitor="simple",
                 monitor_arg=0.5),
    # Wide platform.
    DiffScenario(seed=121, m=8, behavior="overrun", monitor="simple",
                 monitor_arg=0.5, horizon=1.0),
    # Utilization extremes.
    DiffScenario(seed=122, m=2, util_range=(0.2, 0.5), behavior="SHORT",
                 monitor="simple", monitor_arg=0.5),
    DiffScenario(seed=123, m=4, util_range=(0.05, 0.2), behavior="LONG",
                 monitor="simple", monitor_arg=0.5),
    # Interval recording off (exercises the slimmer fingerprint path).
    DiffScenario(seed=124, m=2, behavior="SHORT", monitor="adaptive",
                 monitor_arg=1.0, record_intervals=False),
    # Everything at once: overrun + zero demand + level-D load.
    DiffScenario(seed=125, m=2, behavior="overrun", monitor="adaptive",
                 monitor_arg=0.25, zero_every=3, level_d_tasks=2),
    # Open-system traffic slice: aperiodic releases through the server
    # path (repro.workload.traffic), with and without scripted overload.
    DiffScenario(seed=126, m=2, behavior="constant", monitor="simple",
                 monitor_arg=0.5, traffic="poisson"),
    DiffScenario(seed=127, m=2, behavior="constant", monitor="simple",
                 monitor_arg=0.5, traffic="mmpp"),
    DiffScenario(seed=128, m=2, behavior="constant", monitor="adaptive",
                 monitor_arg=0.5, traffic="diurnal"),
    DiffScenario(seed=129, m=4, behavior="SHORT", monitor="simple",
                 monitor_arg=0.5, traffic="mmpp"),
    DiffScenario(seed=130, m=2, behavior="overrun", monitor="adaptive",
                 monitor_arg=0.5, zero_every=3, level_d_tasks=2,
                 traffic="poisson"),
]


def compute_digests(backend: str = "reference") -> dict:
    return {
        sc.label(): fingerprint_digest(run_dispatcher(sc, "incremental", backend))
        for sc in CORPUS
    }


def test_corpus_shape():
    assert len(CORPUS) == 30
    labels = [sc.label() for sc in CORPUS]
    assert len(set(labels)) == len(labels), "scenario labels must be unique"


def test_golden_fingerprints_match():
    digests = compute_digests()
    if REGEN:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(digests, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        pytest.skip(f"regenerated {GOLDEN_PATH} ({len(digests)} fingerprints)")
    assert GOLDEN_PATH.is_file(), (
        f"{GOLDEN_PATH} is missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert set(golden) == set(digests), (
        "corpus and golden file disagree about which scenarios exist; "
        "regenerate with REPRO_REGEN_GOLDEN=1"
    )
    mismatched = [label for label in digests if digests[label] != golden[label]]
    assert not mismatched, (
        "simulator behaviour changed for "
        f"{len(mismatched)}/{len(digests)} golden scenarios:\n  "
        + "\n  ".join(mismatched)
        + "\nIf intentional, re-pin with REPRO_REGEN_GOLDEN=1 and review the diff."
    )


def test_golden_fingerprints_match_soa():
    """The ``"soa"`` backend is pinned to the *same* golden digests.

    The struct-of-arrays core's contract is byte-identical traces, so
    there is no separate soa golden file: every corpus scenario must
    hash to the reference digest.  A mismatch here with a passing
    reference test means the soa backend diverged; a mismatch in both
    means the simulator's behaviour changed (re-pin as above, and this
    test follows automatically).
    """
    if REGEN:
        pytest.skip("regeneration pins the reference backend; soa follows it")
    assert GOLDEN_PATH.is_file(), (
        f"{GOLDEN_PATH} is missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    digests = compute_digests(backend="soa")
    assert set(golden) == set(digests)
    mismatched = [label for label in digests if digests[label] != golden[label]]
    assert not mismatched, (
        "soa backend diverged from the golden (reference) fingerprints on "
        f"{len(mismatched)}/{len(digests)} scenarios:\n  " + "\n  ".join(mismatched)
    )
