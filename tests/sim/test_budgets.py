"""Tests for execution-budget enforcement (footnote 2)."""


from repro.model.behavior import ConstantBehavior, TraceBehavior
from repro.model.task import CriticalityLevel as L
from repro.sim.budgets import BudgetEnforcedBehavior
from tests.conftest import make_a_task, make_b_task, make_c_task


class TestBudgetEnforcedBehavior:
    def test_level_a_clamped_to_level_a_pwcet(self):
        a = make_a_task(0, 10.0, 0.5, cpu=0)  # C^A = 10.0
        inner = TraceBehavior({(0, 0): 99.0})
        b = BudgetEnforcedBehavior(inner)
        assert b.exec_time(a, 0, 0.0) == 10.0

    def test_level_a_can_still_exceed_level_c_pwcet(self):
        """Footnote 2: budgets at A/B do not prevent level-C overload."""
        a = make_a_task(0, 10.0, 0.5, cpu=0)
        inner = ConstantBehavior(L.B)  # 10x the level-C PWCET
        b = BudgetEnforcedBehavior(inner)
        assert b.exec_time(a, 0, 0.0) == 5.0  # level-B PWCET, > C^C = 0.5

    def test_level_b_clamped(self):
        t = make_b_task(0, 10.0, 0.5, cpu=0)  # C^B = 5.0
        b = BudgetEnforcedBehavior(TraceBehavior({(0, 0): 7.0}))
        assert b.exec_time(t, 0, 0.0) == 5.0

    def test_level_c_unclamped_by_default(self):
        c = make_c_task(0, 4.0, 1.0)
        b = BudgetEnforcedBehavior(TraceBehavior({(0, 0): 3.0}))
        assert b.exec_time(c, 0, 0.0) == 3.0

    def test_level_c_clamped_when_enabled(self):
        """Enforcing level-C budgets restores eq. 1 at level C."""
        c = make_c_task(0, 4.0, 1.0)
        b = BudgetEnforcedBehavior(TraceBehavior({(0, 0): 3.0}), enforce_c=True)
        assert b.exec_time(c, 0, 0.0) == 1.0

    def test_under_budget_passes_through(self):
        c = make_c_task(0, 4.0, 1.0)
        b = BudgetEnforcedBehavior(TraceBehavior({(0, 0): 0.3}), enforce_c=True)
        assert b.exec_time(c, 0, 0.0) == 0.3

    def test_enforcement_can_be_disabled_per_level(self):
        a = make_a_task(0, 10.0, 0.5, cpu=0)
        b = BudgetEnforcedBehavior(TraceBehavior({(0, 0): 99.0}), enforce_a=False)
        assert b.exec_time(a, 0, 0.0) == 99.0
