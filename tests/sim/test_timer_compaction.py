"""Regression: lazily-cancelled release timers must not accumulate.

Generation-stamped cancellation (Algorithm 1 line 22) leaves each
re-armed level-C release timer's dead entry in the event heap until it
pops.  Under repeated ``change_speed`` calls — every recovery episode
re-arms *every* pending level-C timer — dead entries used to pile up
faster than they drained, growing the heap (and the events spent
discarding stale pops) with each episode.  Both backends now compact
the heap once stale entries exceed
``COMPACT_STALE_RATIO x len(taskset)``; these tests pin the bound, the
leak it prevents, and the behavioural neutrality of compaction.
"""

import pytest

import repro.sim.kernel
from repro.core.monitor import NullMonitor
from repro.model.behavior import ConstantBehavior
from repro.model.taskset import TaskSet
from repro.sim.backend import create_kernel
from repro.sim.diffcheck import DiffScenario, build_kernel, fingerprint
from repro.sim.kernel import COMPACT_STALE_RATIO, KernelConfig
from tests.conftest import make_c_task

CHURN = 200  # speed changes driven through each kernel


def heap_of(kernel):
    """The raw event-heap list of either backend."""
    if hasattr(kernel, "engine"):
        return kernel.engine.queue._heap
    return kernel._heap


def churned_kernel(backend: str):
    """A started kernel after CHURN alternating speed changes at t=0."""
    ts = TaskSet(
        [make_c_task(i, 4.0 + i, 1.0, y=3.0 + i) for i in range(4)], m=2
    )
    kernel = create_kernel(
        ts, behavior=ConstantBehavior(), config=KernelConfig(backend=backend)
    )
    kernel.attach_monitor(NullMonitor(kernel))
    kernel.start()
    for i in range(CHURN):
        kernel.change_speed(0.5 if i % 2 == 0 else 1.0, kernel.now)
    return kernel


class TestHeapBound:
    @pytest.mark.parametrize("backend", ["reference", "soa"])
    def test_heap_stays_bounded_under_speed_churn(self, backend):
        kernel = churned_kernel(backend)
        n = len(kernel.taskset)
        # Live timers (<= one per task) + at most ratio x n stale ones
        # awaiting the next trigger + the churn between two triggers.
        bound = (COMPACT_STALE_RATIO + 2) * n + 2
        assert len(heap_of(kernel)) <= bound, (
            f"{backend}: heap grew to {len(heap_of(kernel))} entries "
            f"(> {bound}) under {CHURN} speed changes"
        )

    def test_backends_compact_at_identical_instants(self):
        # Identical trigger arithmetic => identical heap populations.
        ref = churned_kernel("reference")
        soa = churned_kernel("soa")
        assert len(heap_of(ref)) == len(heap_of(soa))

    @pytest.mark.parametrize("backend", ["reference", "soa"])
    def test_leak_without_compaction(self, backend, monkeypatch):
        """The guarded failure mode: with compaction disabled the heap
        retains one dead entry per task per re-arm."""
        monkeypatch.setattr(repro.sim.kernel, "COMPACT_STALE_RATIO", 10**9)
        kernel = churned_kernel(backend)
        # 4 level-C tasks x CHURN re-arms, minus the few that drain.
        assert len(heap_of(kernel)) > CHURN * 3


class TestBehaviouralNeutrality:
    def test_compaction_only_changes_event_count(self, monkeypatch):
        """Survivors keep their keys, so scheduling is untouched: the
        only fingerprint field compaction may change is the number of
        (stale) events popped."""
        sc = DiffScenario(seed=401, m=2, behavior="LONG", monitor="adaptive",
                          monitor_arg=1.0, horizon=3.0)

        def run(ratio):
            monkeypatch.setattr(repro.sim.kernel, "COMPACT_STALE_RATIO", ratio)
            kernel, monitor = build_kernel(sc, "incremental", "reference")
            trace = kernel.run(sc.horizon)
            return fingerprint(trace, kernel, monitor)

        compacted = run(2)
        uncompacted = run(10**9)
        assert compacted["events_processed"] <= uncompacted["events_processed"]
        for key in compacted:
            if key != "events_processed":
                assert compacted[key] == uncompacted[key], key

    def test_compaction_triggers_in_recovery_scenario(self, monkeypatch):
        """The default ratio actually fires under a paper overload (the
        bound above is not vacuous)."""
        sc = DiffScenario(seed=401, m=2, behavior="LONG", monitor="adaptive",
                          monitor_arg=1.0, horizon=3.0)
        kernel, _ = build_kernel(sc, "incremental", "reference")
        calls = []
        orig = kernel._compact_release_timers
        monkeypatch.setattr(
            kernel, "_compact_release_timers",
            lambda: (calls.append(1), orig())[1],
        )
        kernel.run(sc.horizon)
        assert calls, "scenario never triggered compaction"
