"""Tests for the kernel's preemption/migration counters."""


from repro.model.taskset import TaskSet
from repro.sim.kernel import KernelConfig, MC2Kernel
from tests.conftest import make_c_task


def run(tasks, m, behavior=None, until=20.0):
    kernel = MC2Kernel(TaskSet(tasks, m=m), behavior=behavior,
                       config=KernelConfig(record_intervals=True))
    kernel.run(until)
    return kernel


class TestPreemptionCounter:
    def test_no_preemptions_when_unloaded(self):
        k = run([make_c_task(0, 4.0, 1.0, y=3.0)], m=1)
        assert k.preemptions == 0

    def test_high_priority_release_counts_one_preemption(self):
        # tau0 (PP at 2) preempts the long-running tau1 (PP at 11) once.
        t0 = make_c_task(0, 20.0, 1.0, y=1.0, phase=1.0)
        t1 = make_c_task(1, 20.0, 5.0, y=11.0)
        k = run([t0, t1], m=1, until=10.0)
        assert k.preemptions == 1

    def test_completion_is_not_a_preemption(self):
        """Jobs finishing exactly when others release must not count."""
        t0 = make_c_task(0, 4.0, 2.0, y=3.0)
        t1 = make_c_task(1, 4.0, 2.0, y=3.5)
        k = run([t0, t1], m=1, until=20.0)
        assert k.preemptions == 0


class TestMigrationCounter:
    def test_partitioned_like_load_never_migrates(self):
        tasks = [make_c_task(0, 4.0, 1.0, y=3.0), make_c_task(1, 4.0, 1.0, y=3.5)]
        k = run(tasks, m=2)
        assert k.migrations == 0

    def test_global_scheduling_can_migrate(self):
        """A preempted job resuming on another CPU counts as a migration."""
        # Two CPUs, three tasks; the lowest-priority job gets preempted
        # and resumes wherever a CPU frees first.
        tasks = [
            make_c_task(0, 6.0, 2.0, y=1.0, phase=1.0),
            make_c_task(1, 6.0, 2.0, y=1.5, phase=1.0),
            make_c_task(2, 6.0, 4.0, y=10.0),
        ]
        k = run(tasks, m=2, until=30.0)
        assert k.preemptions >= 1
        # Migration count is environment-dependent but non-negative and
        # bounded by preemption-ish churn.
        assert 0 <= k.migrations <= k.preemptions + len(k.trace.jobs)

    def test_counters_zero_without_contention(self):
        k = run([make_c_task(0, 10.0, 1.0, y=5.0)], m=4)
        assert k.preemptions == 0
        assert k.migrations == 0
