"""Differential equivalence: incremental vs baseline dispatch.

The incremental dispatcher (lazy heaps + per-task head tracking) must be
trace-equivalent to the original sort-the-pool baseline — bit-identical
job records, intervals, speed changes, counters, and event counts.
These tests drive :mod:`repro.sim.diffcheck` over hand-built edge cases
and a randomized scenario sweep.
"""

import pytest

from repro.core.monitor import NullMonitor, SimpleMonitor
from repro.model.behavior import ConstantBehavior, TraceBehavior
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.diffcheck import (
    DiffScenario,
    ZeroDemandEvery,
    check_many,
    compare_dispatchers,
    fingerprint,
    random_scenarios,
    run_dispatcher,
)
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.workload.scenarios import SHORT
from tests.conftest import make_a_task, make_b_task, make_c_task


def fingerprints(make_taskset, behavior_factory, horizon, monitor=None, **cfg):
    """Run both dispatchers over a hand-built scenario; return fingerprints."""
    out = []
    for dispatcher in ("baseline", "incremental"):
        kernel = MC2Kernel(
            make_taskset(),
            behavior=behavior_factory(),
            config=KernelConfig(dispatcher=dispatcher, **cfg),
        )
        mon = NullMonitor(kernel) if monitor is None else monitor(kernel)
        kernel.attach_monitor(mon)
        trace = kernel.run(horizon)
        out.append(fingerprint(trace, kernel, mon))
    return out


def d_task(tid, period, exec_time, phase=0.0):
    return Task(task_id=tid, level=L.D, period=period,
                pwcets={L.D: exec_time}, phase=phase)


class TestDispatcherConfig:
    def test_unknown_dispatcher_rejected(self):
        ts = TaskSet([make_c_task(0, 4.0, 1.0)], m=1)
        with pytest.raises(ValueError, match="dispatcher"):
            MC2Kernel(ts, config=KernelConfig(dispatcher="quadratic"))

    def test_default_is_incremental(self):
        assert KernelConfig().dispatcher == "incremental"


class TestHandBuiltEquivalence:
    def test_harmonic_same_instant_ties(self):
        """Harmonic periods: releases, PPs and completions pile onto the
        same instants; tie-breaks must match exactly."""

        def ts():
            return TaskSet(
                [
                    make_c_task(0, 2.0, 0.5, y=1.5),
                    make_c_task(1, 2.0, 0.5, y=1.5),  # identical twin of 0
                    make_c_task(2, 4.0, 1.0, y=3.0),
                    make_c_task(3, 8.0, 2.0, y=6.0),
                ],
                m=2,
            )

        base, inc = fingerprints(ts, ConstantBehavior, 64.0, record_intervals=True)
        assert base == inc

    def test_all_levels_and_level_d(self):
        """A/B partitions + global C + best-effort D in one platform."""

        def ts():
            return TaskSet(
                [
                    make_a_task(10, 4.0, 0.05, cpu=0),
                    make_a_task(11, 8.0, 0.1, cpu=1),
                    make_b_task(20, 6.0, 0.1, cpu=0),
                    make_b_task(21, 12.0, 0.2, cpu=1),
                    make_c_task(0, 4.0, 1.0, y=3.0),
                    make_c_task(1, 6.0, 2.0, y=5.0),
                    make_c_task(2, 10.0, 3.0, y=8.0),
                    d_task(30, 3.0, 1.0),
                    d_task(31, 5.0, 2.0, phase=0.5),
                ],
                m=2,
            )

        base, inc = fingerprints(ts, ConstantBehavior, 120.0, record_intervals=True)
        assert base == inc

    def test_zero_exec_jobs_complete_at_release(self):
        """Zero-demand jobs complete at their own release instant; the
        successor job becomes the head immediately."""

        def ts():
            return TaskSet(
                [make_c_task(0, 2.0, 0.5, y=1.5), make_c_task(1, 3.0, 1.0, y=2.0)],
                m=1,
            )

        base, inc = fingerprints(
            ts,
            lambda: ZeroDemandEvery(ConstantBehavior(), every=2),
            48.0,
            record_intervals=True,
        )
        assert base == inc
        # Sanity: the wrapper really produced zero-demand jobs.
        assert any(j[4] == 0.0 for j in inc["jobs"])

    def test_consecutive_zero_exec_jobs(self):
        """A run of zero-demand jobs of one task at one instant."""

        def ts():
            return TaskSet([make_c_task(0, 1.0, 0.25), make_c_task(1, 4.0, 2.0)], m=1)

        def behavior():
            return TraceBehavior(
                overrides={(0, k): 0.0 for k in range(4, 12)},
                default=ConstantBehavior(),
            )

        base, inc = fingerprints(ts, behavior, 20.0, record_intervals=True)
        assert base == inc

    def test_overload_with_simple_recovery(self):
        """SVO recovery: speed changes, PP actualization, timer re-arming."""

        def overloading_c(tid, period, pwcet_c, y, tolerance):
            # Explicit level-B PWCET so SHORT's windows actually overrun
            # (the paper's 10x pessimism ratio).
            return Task(
                task_id=tid, level=L.C, period=period,
                pwcets={L.C: pwcet_c, L.B: 10.0 * pwcet_c},
                relative_pp=y, tolerance=tolerance,
            )

        def ts():
            return TaskSet(
                [
                    make_a_task(10, 4.0, 0.05, cpu=0),
                    make_b_task(20, 6.0, 0.1, cpu=0),
                    overloading_c(0, 4.0, 1.0, y=3.0, tolerance=2.0),
                    overloading_c(1, 6.0, 2.0, y=5.0, tolerance=3.0),
                ],
                m=1,
            )

        base, inc = fingerprints(
            ts,
            SHORT.behavior,
            30.0,
            monitor=lambda k: SimpleMonitor(k, s=0.5),
            record_intervals=True,
        )
        assert base == inc
        assert base["speed_changes"], "scenario never triggered recovery"


class TestRandomizedSweep:
    def test_randomized_scenarios_trace_equivalent(self):
        """>= 200 randomized scenarios: overload recovery, monitor
        latency, zero-demand jobs, level-D load, 2-8 CPUs."""
        checked, failures = check_many(random_scenarios(200, base_seed=2015))
        assert checked >= 200
        assert not failures, "\n".join(
            f"[{', '.join(f.mismatched)}] {f.scenario.label()}" for f in failures
        )

    def test_sweep_covers_recovery_and_zero_exec(self):
        """The generated grid actually exercises the interesting axes."""
        scenarios = random_scenarios(200, base_seed=2015)
        assert any(s.monitor == "simple" for s in scenarios)
        assert any(s.monitor == "adaptive" for s in scenarios)
        assert any(s.behavior in ("SHORT", "LONG", "DOUBLE") for s in scenarios)
        assert any(s.zero_every for s in scenarios)
        assert any(s.level_d_tasks for s in scenarios)
        assert any(s.monitor_latency > 0 for s in scenarios)
        assert any(not s.use_virtual_time for s in scenarios)
        assert any(s.m == 8 for s in scenarios)

    def test_compare_reports_mismatch_fields(self):
        """A genuinely different pair of runs is reported, not masked."""
        sc = DiffScenario(seed=2015, behavior="SHORT", monitor="simple")
        a = run_dispatcher(sc, "incremental")
        # Different horizon => different fingerprint; reuse the comparator
        # internals by checking dict inequality the way compare does.
        b = run_dispatcher(DiffScenario(seed=2016, behavior="SHORT", monitor="simple"), "incremental")
        assert a != b
        result = compare_dispatchers(sc)
        assert result.equal and not result.mismatched
