"""Differential equivalence: struct-of-arrays backend vs reference kernel.

The ``"soa"`` backend (:mod:`repro.sim.soa`) is an independent
re-implementation of the simulator core on flat arrays; its contract is
*byte-identical traces* — the same job records, intervals, speed
changes, counters, and event counts as :class:`~repro.sim.kernel.MC2Kernel`
on every input.  These tests drive :func:`repro.sim.diffcheck.compare_backends`
over hand-built edge cases and a 120-scenario randomized sweep, and pin
the cache-key separation that keeps backends honest in the result cache.
"""

import pytest

from repro.runtime.spec import KernelSpec, MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.sim.backend import create_kernel, kernel_backend_registry
from repro.sim.diffcheck import (
    DiffScenario,
    check_many_backends,
    compare_backends,
    random_scenarios,
)
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.sim.soa import SoAKernel


class TestBackendConfig:
    def test_registry_has_both_builtins(self):
        assert {"reference", "soa"} <= set(kernel_backend_registry.keys())

    def test_default_is_reference(self):
        assert KernelConfig().backend == "reference"
        assert KernelSpec().backend == "reference"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="kernel backend"):
            KernelSpec(backend="simd")

    def test_create_kernel_dispatches_on_backend(self):
        from tests.conftest import make_c_task
        from repro.model.taskset import TaskSet

        ts = TaskSet([make_c_task(0, 4.0, 1.0)], m=1)
        ref = create_kernel(ts, config=KernelConfig(backend="reference"))
        soa = create_kernel(ts, config=KernelConfig(backend="soa"))
        assert isinstance(ref, MC2Kernel)
        assert isinstance(soa, SoAKernel)


class TestHandBuiltEquivalence:
    """Targeted scenarios for the SoA backend's trickiest paths."""

    def check(self, sc: DiffScenario):
        result = compare_backends(sc)
        assert result.equal, (
            f"backends diverged on {sc.label()}: {', '.join(result.mismatched)}"
        )

    def test_paper_overloads_simple(self):
        for behavior in ("SHORT", "LONG", "DOUBLE"):
            self.check(DiffScenario(seed=301, m=2, behavior=behavior,
                                    monitor="simple", monitor_arg=0.5))

    def test_paper_overloads_adaptive(self):
        for behavior in ("SHORT", "LONG", "DOUBLE"):
            self.check(DiffScenario(seed=302, m=2, behavior=behavior,
                                    monitor="adaptive", monitor_arg=0.5))

    def test_harmonic_ties_and_level_d(self):
        # Level-D pool eligibility is where dispatch non-idempotence
        # bites: a preempted D job regains eligibility only once its CPU
        # actually deschedules it, so skipping "no-op" dispatches
        # unsoundly is visible here.
        self.check(DiffScenario(seed=303, m=2, behavior="SHORT",
                                monitor="simple", monitor_arg=0.5,
                                level_d_tasks=2))

    def test_zero_demand_and_latency(self):
        self.check(DiffScenario(seed=304, m=2, behavior="DOUBLE",
                                monitor="adaptive", monitor_arg=0.5,
                                zero_every=3, monitor_latency=0.001))

    def test_actual_time_mode(self):
        self.check(DiffScenario(seed=305, m=2, behavior="constant",
                                monitor="null", use_virtual_time=False))

    def test_wide_platform_overrun(self):
        self.check(DiffScenario(seed=306, m=8, behavior="overrun",
                                monitor="simple", monitor_arg=0.5, horizon=1.0))


class TestRandomizedSweep:
    def test_randomized_scenarios_trace_equivalent(self):
        """>= 120 randomized scenarios through both backends: overload
        recovery, monitor latency, zero-demand jobs, level-D load,
        2-8 CPUs, virtual time on and off."""
        checked, failures = check_many_backends(random_scenarios(120, base_seed=2015))
        assert checked >= 120
        assert not failures, "\n".join(
            f"[{', '.join(f.mismatched)}] {f.scenario.label()}" for f in failures
        )


class TestCacheKeySeparation:
    """Backends must never collide in the content-addressed result cache."""

    def spec(self, backend: str) -> RunSpec:
        return RunSpec(
            taskset=TaskSetSpec.generated(2015),
            scenario=ScenarioSpec(name="single", windows=((1.0, 2.0),)),
            monitor=MonitorSpec(kind="simple", param=0.6),
            kernel=KernelSpec(backend=backend),
            horizon=6.0,
        )

    def test_backend_changes_spec_key(self):
        assert self.spec("reference").key() != self.spec("soa").key()

    def test_reference_key_matches_pre_backend_format(self):
        # The default backend is omitted from the canonical JSON, so
        # caches populated before the backend field existed stay valid.
        assert '"backend"' not in self.spec("reference").canonical_json()
        assert '"backend":"soa"' in self.spec("soa").canonical_json()

    def test_round_trip_preserves_backend(self):
        from repro.io.runspec_json import runspec_from_dict, runspec_to_dict

        for backend in ("reference", "soa"):
            spec = self.spec(backend)
            assert runspec_from_dict(runspec_to_dict(spec)) == spec
