"""Tests for per-CPU run state (repro.sim.processor)."""

import pytest

from repro.model.job import Job
from repro.sim.processor import Processor
from tests.conftest import make_c_task


def job(exec_time=5.0):
    return Job(task=make_c_task(0, 10.0, 2.0), index=0, release=0.0,
               exec_time=exec_time)


class TestProcessor:
    def test_starts_idle(self):
        p = Processor(0)
        assert p.is_idle

    def test_advance_charges_running_job(self):
        p = Processor(0)
        j = job(5.0)
        p.assign(j, 1.0)
        charged = p.advance(3.5)
        assert charged == pytest.approx(2.5)
        assert j.remaining == pytest.approx(2.5)
        assert p.since == 3.5

    def test_advance_idle_charges_nothing(self):
        p = Processor(0)
        assert p.advance(10.0) == 0.0
        assert p.since == 10.0

    def test_advance_clamps_remaining_at_zero(self):
        p = Processor(0)
        j = job(1.0)
        p.assign(j, 0.0)
        p.advance(1.0 + 1e-13)  # float fuzz beyond the demand
        assert j.remaining == 0.0

    def test_advance_backwards_rejected(self):
        p = Processor(0)
        p.assign(job(), 5.0)
        with pytest.raises(ValueError, match="precedes"):
            p.advance(4.0)

    def test_repeated_advance_accumulates(self):
        p = Processor(0)
        j = job(5.0)
        p.assign(j, 0.0)
        p.advance(1.0)
        p.advance(2.0)
        p.advance(4.0)
        assert j.remaining == pytest.approx(1.0)

    def test_assign_none_idles(self):
        p = Processor(0)
        p.assign(job(), 0.0)
        p.assign(None, 2.0)
        assert p.is_idle
