"""Tests for trace statistics (repro.sim.stats)."""

import pytest

from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel as L
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.sim.stats import (
    ResponseStats,
    cpu_utilizations,
    lateness_series,
    level_response_stats,
    task_response_stats,
    tolerance_miss_counts,
)
from repro.model.taskset import TaskSet
from tests.conftest import make_c_task
from repro.core.tolerance import fixed_tolerances


@pytest.fixture(scope="module")
def run():
    ts = fixed_tolerances(
        TaskSet(
            [make_c_task(0, 4.0, 1.0, y=3.0), make_c_task(1, 6.0, 2.0, y=5.0)],
            m=1,
        ),
        2.0,
    )
    kernel = MC2Kernel(ts, behavior=ConstantBehavior(L.C),
                       config=KernelConfig(record_intervals=True))
    trace = kernel.run(24.0)
    return ts, trace


class TestResponseStats:
    def test_from_values(self):
        s = ResponseStats.from_values([1.0, 2.0, 3.0, 4.0])
        assert s.jobs == 4
        assert s.mean == pytest.approx(2.5)
        assert s.p50 == pytest.approx(2.5)
        assert s.maximum == 4.0
        assert s.p95 <= s.p99 <= s.maximum

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ResponseStats.from_values([])

    def test_row_formats_ms(self):
        s = ResponseStats.from_values([0.1])
        assert "100.00" in s.row("x")


class TestTraceQueries:
    def test_task_stats(self, run):
        _, trace = run
        s = task_response_stats(trace, 0)
        assert s is not None and s.jobs >= 5
        assert s.maximum >= s.mean > 0

    def test_task_without_completions_none(self, run):
        _, trace = run
        assert task_response_stats(trace, 99) is None

    def test_level_stats_pool_all_tasks(self, run):
        _, trace = run
        lvl = level_response_stats(trace, L.C)
        t0 = task_response_stats(trace, 0)
        t1 = task_response_stats(trace, 1)
        assert lvl.jobs == t0.jobs + t1.jobs

    def test_lateness_series(self, run):
        _, trace = run
        xs = lateness_series(trace, 0, relative_pp=3.0)
        assert len(xs) >= 5
        # tau0 runs alone-ish: completes well before its PP.
        assert all(x <= 0.0 for x in xs)

    def test_cpu_utilizations(self, run):
        _, trace = run
        us = cpu_utilizations(trace, m=1, horizon=24.0)
        # U = 1/4 + 2/6 = 0.583...
        assert us[0] == pytest.approx(1 / 4 + 2 / 6, abs=0.05)

    def test_cpu_utilizations_bad_horizon(self, run):
        _, trace = run
        with pytest.raises(ValueError):
            cpu_utilizations(trace, m=1, horizon=0.0)

    def test_tolerance_miss_counts_zero_in_normal_run(self, run):
        ts, trace = run
        counts = tolerance_miss_counts(trace, ts)
        assert set(counts) == {0, 1}
        assert all(v == 0 for v in counts.values())
