"""Regression tests: float tolerances at large simulated times, and
per-instance ``_IdentityClock`` state.

One double ulp grows linearly with magnitude (ulp(1e6) ~ 1.2e-10,
ulp(1e8) ~ 1.5e-8), so a *fixed* absolute epsilon silently stops doing
its job once the simulated clock is large: a completion event computed
as ``start + remaining`` pops with a round-off residue the comparison
cannot see, and the kernel re-arms the completion a few ulps later —
over and over, effectively live-locking the run.  The engine's
past-event guard has the mirror-image failure: legal same-instant timer
events land a few ulps before ``now`` and get rejected.  Both
tolerances are now relative with an absolute floor; these tests pin
that down at phases where the absolute-only versions break.
"""

import math

import pytest

from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.engine import Engine, past_tolerance
from repro.sim.events import Event, EventKind
from repro.sim.kernel import KernelConfig, MC2Kernel, _IdentityClock, completion_eps
from tests.conftest import make_c_task


def awkward_taskset(phase):
    """Two level-C tasks with decimal periods that are not exactly
    representable in binary — release/completion arithmetic accrues
    round-off every hyperperiod."""
    return TaskSet(
        [
            Task(task_id=0, level=L.C, period=0.7, pwcets={L.C: 0.3},
                 relative_pp=0.7, phase=phase, tolerance=1.0),
            Task(task_id=1, level=L.C, period=1.1, pwcets={L.C: 0.4},
                 relative_pp=1.1, phase=phase, tolerance=1.0),
        ],
        m=1,
    )


class TestToleranceScaling:
    def test_past_tolerance_floor_and_growth(self):
        assert past_tolerance(0.0) == 1e-12
        assert past_tolerance(1.0) == 1e-12
        # Beyond ~1e3 the relative term dominates and tracks ulp(now).
        for now in (1e6, 1e8, 1e10):
            assert past_tolerance(now) == now * 1e-15
            assert past_tolerance(now) > math.ulp(now)

    def test_completion_eps_floor_and_growth(self):
        assert completion_eps(0.0) == 1e-9
        assert completion_eps(1.0) == 1e-9
        for now in (1e7, 1e9, 1e11):
            assert completion_eps(now) == now * 1e-15
            assert completion_eps(now) > math.ulp(now)


class TestEngineAtLargeTimes:
    def test_few_ulp_past_event_accepted(self):
        """An event a few ulps before now (timer round-trip round-off)
        must be schedulable; 1e-12 absolute alone would reject it."""
        eng = Engine()
        now = 1e9
        eng.push(Event(now, EventKind.RELEASE))
        eng.run(lambda ev: None, until=now)
        assert eng.now == now
        nudged = now
        for _ in range(3):
            nudged = math.nextafter(nudged, 0.0)
        assert now - nudged > 1e-12  # the old guard really would trip
        eng.push(Event(nudged, EventKind.RELEASE))  # must not raise
        seen = []
        eng.run(lambda ev: seen.append(ev.time), until=now + 1.0)
        assert seen == [nudged]

    def test_clearly_past_event_still_rejected(self):
        eng = Engine()
        eng.push(Event(1e9, EventKind.RELEASE))
        eng.run(lambda ev: None, until=1e9)
        with pytest.raises(ValueError, match="schedule"):
            eng.push(Event(1e9 - 1e-3, EventKind.RELEASE))


class TestKernelAtLargePhases:
    @pytest.mark.parametrize("phase", [1e7, 1e8, 1e9])
    def test_completions_prompt_at_large_phase(self, phase):
        """Jobs complete at release + exec even when one ulp of ``now``
        dwarfs the old absolute slack (which live-locks these runs)."""
        kernel = MC2Kernel(awkward_taskset(phase), behavior=ConstantBehavior())
        trace = kernel.run(phase + 20.0)
        done = [r for r in trace.jobs if r.completion is not None]
        assert len(done) >= 40  # ~28 + ~18 jobs in 20s, minus stragglers
        for rec in done:
            # Under-utilized single CPU: every job finishes promptly, so a
            # deferred completion would show up as a late outlier here.
            assert rec.completion - rec.release <= 0.8 + 1e-3

    def test_virtual_time_retiming_at_large_phase(self):
        """Speed changes at a large instant: virt<->act round-trips stay
        within the (relative) release-rule tolerance."""
        phase = 1e8
        kernel = MC2Kernel(awkward_taskset(phase), behavior=ConstantBehavior())
        kernel.run_until(phase + 5.0)
        kernel.change_speed(0.5, kernel.engine.now)
        kernel.run_until(phase + 10.0)
        kernel.change_speed(1.0, kernel.engine.now)
        trace = kernel.run(phase + 15.0)
        assert [s for _, s in trace.speed_changes] == [0.5, 1.0]
        done = [r for r in trace.jobs if r.completion is not None]
        assert done, "no jobs completed after retiming"


class TestIdentityClockIsolation:
    def test_state_is_per_instance(self):
        a, b = _IdentityClock(), _IdentityClock()
        a.speed = 0.25
        a.last_act = 42.0
        a.last_virt = 21.0
        assert (b.speed, b.last_act, b.last_virt) == (1.0, 0.0, 0.0)

    def test_two_baseline_kernels_cannot_alias(self):
        """Mutating one kernel's clock must not leak into another —
        the class-attribute version of _IdentityClock failed this."""
        cfg = KernelConfig(use_virtual_time=False)
        ts = TaskSet([make_c_task(0, 4.0, 1.0, y=3.0)], m=1)
        k1 = MC2Kernel(ts, config=cfg)
        k2 = MC2Kernel(TaskSet([make_c_task(0, 4.0, 1.0, y=3.0)], m=1), config=cfg)
        assert k1.clock is not k2.clock
        k1.clock.last_act = 99.0
        assert k2.clock.last_act == 0.0
        # Conversions stay identity regardless of the mutated fields.
        assert k1.clock.act_to_virt(7.0) == 7.0
        assert k2.clock.virt_to_act(7.0) == 7.0

    def test_slots_prevent_stray_attributes(self):
        clk = _IdentityClock()
        with pytest.raises(AttributeError):
            clk.history = []
