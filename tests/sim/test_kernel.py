"""Tests for the MC² kernel (repro.sim.kernel)."""

import pytest

from repro.core.monitor import NullMonitor, SimpleMonitor
from repro.model.behavior import TraceBehavior
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.kernel import KernelConfig, MC2Kernel, simulate
from tests.conftest import make_a_task, make_b_task, make_c_task


def kernel_for(tasks, m, behavior=None, **cfg):
    ts = TaskSet(tasks, m=m)
    return MC2Kernel(ts, behavior=behavior,
                     config=KernelConfig(record_intervals=True, **cfg))


class TestBasicExecution:
    def test_single_task_periodic_execution(self):
        k = kernel_for([make_c_task(0, 4.0, 1.0, y=3.0)], m=1)
        trace = k.run(12.0)
        recs = trace.jobs_of(0)
        assert [r.release for r in recs] == [0.0, 4.0, 8.0, 12.0]
        done = [r for r in recs if r.completion is not None]
        assert [r.completion for r in done] == [1.0, 5.0, 9.0]
        assert all(r.response_time == 1.0 for r in done)

    def test_virtual_pps_recorded(self):
        k = kernel_for([make_c_task(0, 4.0, 1.0, y=3.0)], m=1)
        trace = k.run(8.0)
        r0 = trace.job(0, 0)
        assert r0.virtual_release == 0.0
        assert r0.virtual_pp == 3.0

    def test_job_completing_before_pp_has_no_actual_pp(self):
        """Fig. 5(b): t^c <= y leaves y unresolved (bottom)."""
        k = kernel_for([make_c_task(0, 4.0, 1.0, y=3.0)], m=1)
        trace = k.run(8.0)
        assert trace.job(0, 0).actual_pp is None

    def test_late_job_gets_actual_pp_at_completion(self):
        """Fig. 5(d): PP passes with no speed change; resolved at t^c."""
        k = kernel_for(
            [make_c_task(0, 4.0, 1.0, y=3.0)],
            m=1,
            behavior=TraceBehavior({(0, 0): 3.5}),
        )
        trace = k.run(8.0)
        r0 = trace.job(0, 0)
        assert r0.completion == 3.5
        assert r0.actual_pp == pytest.approx(3.0)

    def test_two_cpus_run_in_parallel(self):
        k = kernel_for(
            [make_c_task(0, 4.0, 2.0, y=3.0), make_c_task(1, 4.0, 2.0, y=3.0)],
            m=2,
        )
        trace = k.run(4.0)
        assert trace.job(0, 0).completion == 2.0
        assert trace.job(1, 0).completion == 2.0


class TestGELPriorities:
    def test_earlier_virtual_pp_preempts(self):
        # tau0 releases at 1 with PP 2; tau1 (PP 11) is running: preempt.
        t0 = make_c_task(0, 10.0, 1.0, y=1.0, phase=1.0)
        t1 = make_c_task(1, 12.0, 5.0, y=11.0)
        k = kernel_for([t0, t1], m=1)
        trace = k.run(12.0)
        assert trace.job(0, 0).completion == pytest.approx(2.0)
        assert trace.job(1, 0).completion == pytest.approx(6.0)
        ivs = trace.intervals_of(1, 0)
        assert len(ivs) == 2  # tau1 was preempted once

    def test_ties_do_not_cause_thrashing(self):
        # Two equal-PP tasks on one CPU: deterministic id order.
        t0 = make_c_task(0, 10.0, 2.0, y=5.0)
        t1 = make_c_task(1, 10.0, 2.0, y=5.0)
        k = kernel_for([t0, t1], m=1)
        trace = k.run(10.0)
        assert trace.job(0, 0).completion == 2.0
        assert trace.job(1, 0).completion == 4.0


class TestIntraTaskPrecedence:
    def test_successor_waits_for_predecessor(self):
        """A backlogged task must not run two jobs in parallel (Fig. 3)."""
        t = make_c_task(0, 2.0, 1.0, y=2.0)
        k = kernel_for([t], m=2, behavior=TraceBehavior({(0, 0): 5.0}))
        trace = k.run(10.0)
        assert trace.job(0, 0).completion == 5.0
        # Job 1 (released at 2) could have run on the idle second CPU but
        # must wait for job 0.
        assert trace.job(0, 1).completion == pytest.approx(6.0)
        for iv1 in trace.intervals_of(0, 0):
            for iv2 in trace.intervals_of(0, 1):
                assert iv1.end <= iv2.start or iv2.end <= iv1.start


class TestCriticalityLayering:
    def test_level_a_preempts_c(self):
        a = make_a_task(10, 10.0, 2.0, cpu=0)  # runs 2.0 at level-C PWCET
        c = make_c_task(0, 10.0, 3.0, y=5.0)
        k = kernel_for([a, c], m=1)
        trace = k.run(10.0)
        assert trace.job(10, 0).completion == 2.0  # A first
        assert trace.job(0, 0).completion == 5.0

    def test_level_b_preempts_c_but_not_a(self):
        a = make_a_task(10, 10.0, 1.0, cpu=0)
        b = make_b_task(20, 10.0, 1.0, cpu=0)
        c = make_c_task(0, 10.0, 1.0, y=5.0)
        k = kernel_for([a, b, c], m=1)
        trace = k.run(10.0)
        assert trace.job(10, 0).completion == 1.0
        assert trace.job(20, 0).completion == 2.0
        assert trace.job(0, 0).completion == 3.0

    def test_level_b_edf_order_within_cpu(self):
        b1 = make_b_task(20, 30.0, 1.0, cpu=0)  # deadline 30
        b2 = make_b_task(21, 10.0, 1.0, cpu=0)  # deadline 10: first
        k = kernel_for([b1, b2], m=1)
        trace = k.run(10.0)
        assert trace.job(21, 0).completion == 1.0
        assert trace.job(20, 0).completion == 2.0

    def test_level_a_partitioned_to_its_cpu(self):
        a = make_a_task(10, 10.0, 2.0, cpu=1)
        c = make_c_task(0, 10.0, 4.0, y=5.0)
        k = kernel_for([a, c], m=2)
        trace = k.run(10.0)
        # C runs on CPU 0 unobstructed; A occupies CPU 1.
        assert trace.job(0, 0).completion == 4.0
        assert {iv.cpu for iv in trace.intervals_of(10)} == {1}

    def test_level_d_runs_only_on_leftover(self):
        c = make_c_task(0, 10.0, 4.0, y=5.0)
        d = Task(task_id=30, level=L.D, period=10.0, pwcets={L.D: 2.0})
        k = kernel_for([c, d], m=1)
        trace = k.run(10.0)
        assert trace.job(0, 0).completion == 4.0
        assert trace.job(30, 0).completion == 6.0


class TestVirtualTimeInKernel:
    def test_change_speed_stretches_releases(self):
        t = make_c_task(0, 4.0, 1.0, y=3.0)
        k = kernel_for([t], m=1)
        k.start()
        k.run_until(4.5)  # jobs 0 (at 0) and 1 (at 4) released
        k.change_speed(0.5, k.engine.now)
        k.run_until(20.0)
        k.finish()
        recs = k.trace.jobs_of(0)
        # v(4.5) = 4.5; next release needs v = 8 => actual 4.5 + 3.5/0.5 = 11.5.
        assert recs[2].release == pytest.approx(11.5)

    def test_change_speed_actualizes_passed_pps(self):
        """Fig. 5(c): PP passed in virtual time before a speed change."""
        t = make_c_task(0, 10.0, 6.0, y=2.0)
        k = kernel_for([t], m=1)
        k.start()
        k.run_until(5.0)  # PP (v=2) already passed; job still running
        k.change_speed(0.5, 5.0)
        k.run_until(10.0)
        k.finish()
        r0 = k.trace.job(0, 0)
        assert r0.actual_pp == pytest.approx(2.0)  # resolved on the old segment

    def test_monitor_change_speed_round_trip(self):
        """SIMPLE monitor slows on a miss and restores speed at recovery."""
        t = make_c_task(0, 4.0, 1.0, y=1.0, tolerance=0.5)
        ts = TaskSet([t], m=1)
        kernel = MC2Kernel(ts, behavior=TraceBehavior({(0, 0): 3.0}),
                           config=KernelConfig())
        mon = SimpleMonitor(kernel, s=0.5)
        kernel.attach_monitor(mon)
        kernel.run(20.0)
        assert kernel.trace.speed_changes[0][1] == 0.5
        assert kernel.trace.speed_changes[-1][1] == 1.0
        assert not mon.recovery_mode
        assert isinstance(kernel.clock.speed, float) and kernel.clock.speed == 1.0

    def test_virtual_time_disabled_is_plain_gel(self):
        t = make_c_task(0, 4.0, 1.0, y=3.0)
        k = kernel_for([t], m=1, use_virtual_time=False)
        trace = k.run(8.0)
        assert trace.job(0, 0).completion == 1.0
        with pytest.raises(RuntimeError, match="use_virtual_time"):
            k.change_speed(0.5, 8.0)

    def test_disabled_mode_rejects_active_monitor(self):
        ts = TaskSet([make_c_task(0, 4.0, 1.0, y=3.0, tolerance=1.0)], m=1)
        k = MC2Kernel(ts, config=KernelConfig(use_virtual_time=False))
        with pytest.raises(ValueError, match="NullMonitor"):
            k.attach_monitor(SimpleMonitor(k, s=0.5))
        k.attach_monitor(NullMonitor(k))  # fine


class TestMonitorPlumbing:
    def test_queue_empty_reported_correctly(self):
        """Captured reports carry the ready-queue state at completion."""
        reports = []

        class Spy(NullMonitor):
            def on_job_complete(self, report):
                reports.append(report)
                super().on_job_complete(report)

        # Two tasks on one CPU: when tau0's job completes, tau1's is ready.
        ts = TaskSet(
            [make_c_task(0, 10.0, 1.0, y=1.0), make_c_task(1, 10.0, 1.0, y=9.0)],
            m=1,
        )
        k = MC2Kernel(ts)
        k.attach_monitor(Spy(k))
        k.run(5.0)
        first = next(r for r in reports if r.jid == (0, 0))
        second = next(r for r in reports if r.jid == (1, 0))
        assert not first.queue_empty
        assert second.queue_empty

    def test_monitor_latency_defers_reports(self):
        seen_at = []

        class Spy(NullMonitor):
            def __init__(self, kernel):
                super().__init__(kernel)
                self.kernel = kernel

            def on_job_complete(self, report):
                seen_at.append((report.comp_time, self.kernel.engine.now))
                super().on_job_complete(report)

        ts = TaskSet([make_c_task(0, 4.0, 1.0, y=3.0)], m=1)
        k = MC2Kernel(ts, config=KernelConfig(monitor_latency=0.25))
        k.attach_monitor(Spy(k))
        k.run(4.0)
        comp, seen = seen_at[0]
        assert comp == 1.0
        assert seen == pytest.approx(1.25)


class TestOverheadMeasurement:
    def test_samples_collected_when_enabled(self):
        k = kernel_for([make_c_task(0, 4.0, 1.0, y=3.0)], m=1,
                       measure_overhead=True)
        k.run(8.0)
        assert len(k.sched_overheads) > 0
        assert all(isinstance(x, int) and x >= 0 for x in k.sched_overheads)

    def test_no_samples_by_default(self):
        k = kernel_for([make_c_task(0, 4.0, 1.0, y=3.0)], m=1)
        k.run(8.0)
        assert k.sched_overheads == []


class TestLifecycle:
    def test_finish_snapshots_incomplete_jobs(self):
        k = kernel_for([make_c_task(0, 10.0, 5.0, y=5.0)], m=1)
        trace = k.run(2.0)
        recs = trace.jobs_of(0)
        assert len(recs) == 1
        assert recs[0].completion is None

    def test_cannot_resume_after_finish(self):
        k = kernel_for([make_c_task(0, 10.0, 1.0, y=5.0)], m=1)
        k.run(2.0)
        with pytest.raises(RuntimeError, match="finished"):
            k.run_until(5.0)

    def test_attach_monitor_after_start_rejected(self):
        k = kernel_for([make_c_task(0, 10.0, 1.0, y=5.0)], m=1)
        k.start()
        with pytest.raises(RuntimeError, match="before"):
            k.attach_monitor(NullMonitor(k))

    def test_simulate_wrapper(self):
        ts = TaskSet([make_c_task(0, 4.0, 1.0, y=3.0, tolerance=5.0)], m=1)
        trace, kernel, monitor = simulate(ts, until=8.0)
        assert isinstance(monitor, NullMonitor)
        assert trace.job(0, 0).completion == 1.0
        assert kernel.now == 8.0


class TestZeroDemandJobs:
    def test_level_d_without_pwcets_completes_instantly(self):
        d = Task(task_id=30, level=L.D, period=5.0)
        k = kernel_for([d], m=1)
        trace = k.run(10.0)
        recs = [r for r in trace.jobs_of(30) if r.completion is not None]
        assert all(r.response_time == 0.0 for r in recs)
