"""Tests for the event queue (repro.sim.events)."""

import pytest

from repro.sim.events import Event, EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(Event(2.0, EventKind.RELEASE))
        q.push(Event(1.0, EventKind.RELEASE))
        q.push(Event(3.0, EventKind.RELEASE))
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_kind_order_at_equal_time(self):
        """RELEASE < COMPLETION < MONITOR_REPORT < END at the same instant."""
        q = EventQueue()
        q.push(Event(1.0, EventKind.END))
        q.push(Event(1.0, EventKind.COMPLETION))
        q.push(Event(1.0, EventKind.MONITOR_REPORT))
        q.push(Event(1.0, EventKind.RELEASE))
        kinds = [q.pop().kind for _ in range(4)]
        assert kinds == [
            EventKind.RELEASE,
            EventKind.COMPLETION,
            EventKind.MONITOR_REPORT,
            EventKind.END,
        ]

    def test_insertion_order_breaks_remaining_ties(self):
        q = EventQueue()
        a = Event(1.0, EventKind.RELEASE, payload="a")
        b = Event(1.0, EventKind.RELEASE, payload="b")
        q.push(a)
        q.push(b)
        assert q.pop().payload == "a"
        assert q.pop().payload == "b"


class TestQueueProtocol:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(Event(0.0, EventKind.RELEASE))
        assert q and len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(Event(5.0, EventKind.RELEASE))
        q.push(Event(2.0, EventKind.RELEASE))
        assert q.peek_time() == 2.0
        q.pop()
        assert q.peek_time() == 5.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
