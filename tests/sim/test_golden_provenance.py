"""Golden ``repro-provenance`` manifest corpus.

Five fixed sweep campaigns spanning the paper's overload scenarios and
both recovery monitors, each executed under **both kernel backends**
(``reference`` and ``soa``) and pinned to the manifest ``key()`` its
merged artifact attests to.  The manifest key covers the campaign key,
the ordered per-cell result digests, the artifact sha256, and the
kernel identity — so *any* change to simulator behaviour, result
serialization, the merged byte layout, or campaign identity moves a
pinned key and names the scenario that moved.

The key deliberately excludes worker attribution and the code version
(:meth:`~repro.provenance.ProvenanceManifest.key`), so code-only
changes that leave result bytes intact keep this corpus green.

Intentional behaviour changes re-pin with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/sim/test_golden_provenance.py

and the diff of ``tests/sim/golden/provenance.json`` documents the
blast radius in review.
"""

import json
import os
import pathlib

import pytest

from repro.provenance import load_manifest, provenance_path
from repro.runtime.executor import SerialBackend
from repro.runtime.shard import write_results_artifact
from repro.runtime.spec import (
    KernelSpec,
    MonitorSpec,
    RunSpec,
    ScenarioSpec,
    TaskSetSpec,
)
from repro.workload.generator import GeneratorParams, taskset_seeds
from repro.workload.scenarios import CALM, DOUBLE, LONG, SHORT

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "provenance.json"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"
BACKENDS = ("reference", "soa")

# label -> (scenario, monitor, monitor_arg, base_seed)
CORPUS = {
    "short-simple": (SHORT, "simple", 0.5, 201),
    "long-adaptive": (LONG, "adaptive", 0.5, 202),
    "double-simple": (DOUBLE, "simple", 0.25, 203),
    "calm-none": (CALM, "none", None, 204),
    "short-adaptive-m4": (SHORT, "adaptive", 1.0, 205),
}


def corpus_specs(label, backend):
    scenario, monitor, arg, base_seed = CORPUS[label]
    params = GeneratorParams(m=4 if label.endswith("-m4") else 2)
    return [
        RunSpec(
            taskset=TaskSetSpec.generated(seed, params),
            scenario=ScenarioSpec.from_scenario(scenario),
            monitor=MonitorSpec(monitor, arg),
            horizon=2.0,
            kernel=KernelSpec(backend=backend),
        )
        for seed in taskset_seeds(2, base_seed=base_seed)
    ]


def compute_keys(tmp_path) -> dict:
    keys = {}
    for label in CORPUS:
        for backend in BACKENDS:
            specs = corpus_specs(label, backend)
            results = SerialBackend().run(specs)
            out = write_results_artifact(
                specs, results, tmp_path / f"{label}-{backend}.json",
                shard_size=2,
            )
            keys[f"{label}/{backend}"] = load_manifest(
                provenance_path(out)
            ).key()
    return keys


def test_corpus_shape():
    assert len(CORPUS) == 5
    assert len({cfg[3] for cfg in CORPUS.values()}) == 5, (
        "base seeds must be distinct"
    )


def test_golden_manifest_keys_match(tmp_path):
    keys = compute_keys(tmp_path)
    if REGEN:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(keys, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip(f"regenerated {GOLDEN_PATH} ({len(keys)} manifest keys)")
    assert GOLDEN_PATH.is_file(), (
        f"{GOLDEN_PATH} is missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert set(golden) == set(keys), (
        "corpus and golden file disagree about which scenarios exist; "
        "regenerate with REPRO_REGEN_GOLDEN=1"
    )
    mismatched = [label for label in keys if keys[label] != golden[label]]
    assert not mismatched, (
        "provenance identity changed for "
        f"{len(mismatched)}/{len(keys)} golden campaigns:\n  "
        + "\n  ".join(mismatched)
        + "\nIf intentional, re-pin with REPRO_REGEN_GOLDEN=1 and review "
        "the diff."
    )


def test_backend_is_part_of_manifest_identity(tmp_path):
    """The two backends are distinct campaigns (the kernel is in the
    spec key), so their manifest keys must differ even though their
    result *documents* are behaviourally identical."""
    if not GOLDEN_PATH.is_file():
        pytest.skip("golden file not pinned yet")
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    for label in CORPUS:
        assert golden[f"{label}/reference"] != golden[f"{label}/soa"]
