"""Tests for schedule traces (repro.sim.trace)."""

import pytest

from repro.model.job import Job
from repro.model.task import CriticalityLevel as L
from repro.sim.trace import Trace
from tests.conftest import make_c_task


def done_job(tid=0, index=0, release=0.0, exec_time=1.0, completion=2.0, pp=None):
    j = Job(task=make_c_task(tid, 4.0, 1.0), index=index, release=release,
            exec_time=exec_time)
    j.completion = completion
    j.actual_pp = pp
    return j


class TestJobRecords:
    def test_record_and_query(self):
        tr = Trace()
        tr.record_job(done_job(0, 0, completion=2.0))
        tr.record_job(done_job(0, 1, release=4.0, completion=9.0))
        tr.record_job(done_job(1, 0, completion=3.0))
        assert len(tr.jobs_of(0)) == 2
        assert tr.job(0, 1).response_time == 5.0
        with pytest.raises(KeyError):
            tr.job(9, 9)

    def test_jobs_of_sorted_by_index(self):
        tr = Trace()
        tr.record_job(done_job(0, 2))
        tr.record_job(done_job(0, 0))
        assert [j.index for j in tr.jobs_of(0)] == [0, 2]

    def test_completed_filter(self):
        tr = Trace()
        tr.record_job(done_job(0, 0))
        incomplete = Job(task=make_c_task(0, 4.0, 1.0), index=1, release=4.0,
                         exec_time=1.0)
        tr.record_job(incomplete)
        assert len(tr.completed()) == 1
        assert len(tr.jobs) == 2

    def test_response_times_and_max(self):
        tr = Trace()
        tr.record_job(done_job(0, 0, release=0.0, completion=2.0))
        tr.record_job(done_job(0, 1, release=4.0, completion=9.0))
        assert sorted(tr.response_times(L.C)) == [2.0, 5.0]
        assert tr.max_response_time(L.C) == 5.0

    def test_max_response_time_empty_is_zero(self):
        assert Trace().max_response_time() == 0.0

    def test_pp_lateness(self):
        rec = Trace()
        rec.record_job(done_job(0, 0, completion=5.0, pp=3.0))
        assert rec.jobs[0].pp_lateness == 2.0
        rec.record_job(done_job(0, 1, completion=5.0, pp=None))
        assert rec.jobs[1].pp_lateness is None


class TestIntervals:
    def test_disabled_by_default(self):
        tr = Trace()
        tr.record_interval(0, done_job(), 0.0, 1.0)
        assert tr.intervals == []

    def test_recording_and_queries(self):
        tr = Trace(record_intervals=True)
        j = done_job(0, 0)
        tr.record_interval(0, j, 0.0, 1.0)
        tr.record_interval(1, j, 2.0, 3.0)
        tr.record_interval(0, done_job(1, 0), 1.0, 2.0)
        assert len(tr.intervals_of(0)) == 2
        assert [iv.cpu for iv in tr.intervals_of(0)] == [0, 1]
        assert len(tr.busy_intervals(0)) == 2
        assert tr.busy_intervals(0)[0].length == 1.0

    def test_empty_interval_dropped(self):
        tr = Trace(record_intervals=True)
        tr.record_interval(0, done_job(), 1.0, 1.0)
        assert tr.intervals == []

    def test_render_ascii_requires_intervals(self):
        with pytest.raises(ValueError, match="disabled"):
            Trace().render_ascii([], 10.0)

    def test_render_ascii_shows_execution(self):
        tr = Trace(record_intervals=True)
        t = make_c_task(1, 4.0, 2.0, name="x1")
        j = Job(task=t, index=0, release=0.0, exec_time=2.0)
        tr.record_interval(0, j, 0.0, 2.0)
        art = tr.render_ascii([t], 4.0, resolution=1.0)
        assert "CPU0" in art
        row = [l for l in art.splitlines() if l.startswith("CPU0")][0]
        assert row.count("1") == 2
        assert row.count(".") == 2


class TestSpeedChanges:
    def test_recorded_in_order(self):
        tr = Trace()
        tr.record_speed_change(19.0, 0.5)
        tr.record_speed_change(29.0, 1.0)
        assert tr.speed_changes == [(19.0, 0.5), (29.0, 1.0)]
