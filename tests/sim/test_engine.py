"""Tests for the simulation loop (repro.sim.engine)."""

import pytest

from repro.sim.engine import Engine
from repro.sim.events import Event, EventKind


class TestRun:
    def test_processes_events_in_order(self):
        eng = Engine()
        seen = []
        for t in (3.0, 1.0, 2.0):
            eng.push(Event(t, EventKind.RELEASE, payload=t))
        eng.run(lambda ev: seen.append(ev.payload), until=10.0)
        assert seen == [1.0, 2.0, 3.0]
        assert eng.now == 10.0
        assert eng.events_processed == 3

    def test_until_is_inclusive(self):
        eng = Engine()
        seen = []
        eng.push(Event(5.0, EventKind.RELEASE))
        eng.run(lambda ev: seen.append(ev.time), until=5.0)
        assert seen == [5.0]

    def test_events_beyond_horizon_survive_for_next_segment(self):
        eng = Engine()
        seen = []
        eng.push(Event(5.0, EventKind.RELEASE))
        eng.push(Event(15.0, EventKind.RELEASE))
        eng.run(lambda ev: seen.append(ev.time), until=10.0)
        assert seen == [5.0]
        eng.run(lambda ev: seen.append(ev.time), until=20.0)
        assert seen == [5.0, 15.0]

    def test_stop_predicate_halts_early(self):
        eng = Engine()
        seen = []
        for t in (1.0, 2.0, 3.0):
            eng.push(Event(t, EventKind.RELEASE))
        eng.run(lambda ev: seen.append(ev.time), until=10.0,
                stop=lambda: len(seen) >= 2)
        assert seen == [1.0, 2.0]
        assert eng.now == 2.0

    def test_resume_after_stop_ignores_stale_end(self):
        """Stale END markers from an interrupted segment must be skipped."""
        eng = Engine()
        seen = []
        for t in (1.0, 2.0, 3.0):
            eng.push(Event(t, EventKind.RELEASE))
        eng.run(lambda ev: seen.append(ev.time), until=10.0,
                stop=lambda: len(seen) >= 1)
        # The END@10 of the first run is still queued; a resume to 20 must
        # not break at it prematurely... it should process 2.0 and 3.0.
        eng.run(lambda ev: seen.append(ev.time), until=20.0)
        assert seen == [1.0, 2.0, 3.0]
        assert eng.now == 20.0

    def test_handler_can_push_new_events(self):
        eng = Engine()
        seen = []

        def handler(ev):
            seen.append(ev.time)
            if ev.time < 3.0:
                eng.push(Event(ev.time + 1.0, EventKind.RELEASE))

        eng.push(Event(1.0, EventKind.RELEASE))
        eng.run(handler, until=10.0)
        assert seen == [1.0, 2.0, 3.0]

    def test_pushing_into_the_past_rejected(self):
        eng = Engine()
        eng.push(Event(5.0, EventKind.RELEASE))
        eng.run(lambda ev: None, until=10.0)
        with pytest.raises(ValueError, match="schedule"):
            eng.push(Event(3.0, EventKind.RELEASE))

    def test_empty_queue_still_reaches_horizon(self):
        eng = Engine()
        eng.run(lambda ev: None, until=7.0)
        assert eng.now == 7.0
