"""End-to-end CLI coverage: faults run / report / shrink / replay."""

from __future__ import annotations

import json

from repro.cli import main

RUN_SMALL = [
    "faults", "run", "--seed", "2015", "--cells", "2",
    "--tasksets", "1", "--horizon", "20.0",
]


def _scorecard(tmp_path, extra=()):
    path = tmp_path / "scorecard.json"
    rc = main(RUN_SMALL + ["-o", str(path)] + list(extra))
    return rc, path


class TestRun:
    def test_faulted_run_writes_scorecard(self, tmp_path, capsys):
        rc, path = _scorecard(tmp_path)
        assert rc == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "fault campaign scorecard" in out

    def test_fault_free_gate_passes_clean(self, capsys):
        rc = main([
            "faults", "run", "--fault-free", "--cells", "4",
            "--tasksets", "1", "--horizon", "20.0",
        ])
        assert rc == 0
        assert "violations: none" in capsys.readouterr().out

    def test_json_summary(self, capsys):
        rc = main(RUN_SMALL + ["--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["faulted"] == 2


class TestReportShrinkReplay:
    def test_report_reads_saved_scorecard(self, tmp_path, capsys):
        _, path = _scorecard(tmp_path)
        capsys.readouterr()
        assert main(["faults", "report", str(path)]) == 0
        assert "cells:" in capsys.readouterr().out

    def test_report_json(self, tmp_path, capsys):
        _, path = _scorecard(tmp_path)
        capsys.readouterr()
        assert main(["faults", "report", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "violating_cells" in doc

    def test_shrink_without_violations_errors(self, tmp_path, capsys):
        # A fault-free campaign has nothing to shrink.
        path = tmp_path / "clean.json"
        main([
            "faults", "run", "--fault-free", "--cells", "2",
            "--tasksets", "1", "--horizon", "20.0", "-o", str(path),
        ])
        capsys.readouterr()
        repro = tmp_path / "repro.json"
        assert main(["faults", "shrink", str(path), "-o", str(repro)]) == 1
        assert not repro.exists()

    def test_shrink_then_replay_roundtrip(self, tmp_path, capsys):
        # Seed 2015 is known to give this tiny campaign a violating
        # cell; if the grid or plan generator changes, pick a new seed
        # rather than weakening the assertions.
        path = tmp_path / "scorecard.json"
        rc = main([
            "faults", "run", "--seed", "2015", "--cells", "4",
            "--tasksets", "1", "--horizon", "20.0", "-o", str(path),
        ])
        assert rc == 0
        from repro.faults.campaign import Scorecard

        assert Scorecard.load(str(path)).violating(), (
            "seed 2015 no longer yields a violating cell here; update the seed"
        )
        capsys.readouterr()
        repro = tmp_path / "repro.json"
        assert main(["faults", "shrink", str(path), "-o", str(repro)]) == 0
        out = capsys.readouterr().out
        assert "shrunk" in out and repro.exists()
        assert main(["faults", "replay", str(repro)]) == 0
        assert "reproduced" in capsys.readouterr().out
