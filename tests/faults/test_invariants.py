"""Unit tests for the invariant oracles against synthetic run artifacts
(the end-to-end pairing with real faults lives in test_plane.py)."""

from __future__ import annotations

from types import SimpleNamespace

from repro.faults.invariants import (
    INVARIANT_NAMES,
    Violation,
    _Collector,
    _MAX_PER_INVARIANT,
    _check_ab_isolation,
    _check_gel_order,
    _check_speed_bounds,
)
from repro.faults.plane import FAULT_TASK_BASE_ID
from repro.model.task import CriticalityLevel


def _job(level, task_id, index, release, completion, virtual_pp=None):
    return SimpleNamespace(
        level=level,
        task_id=task_id,
        index=index,
        release=release,
        completion=completion,
        virtual_pp=virtual_pp,
    )


class _FakeTS:
    """Minimal TaskSet stand-in: indexable by task id, fixed period."""

    def __init__(self, period=1.0):
        self._period = period

    def __getitem__(self, task_id):
        return SimpleNamespace(period=self._period)


class TestViolation:
    def test_dict_roundtrip(self):
        v = Violation("ab_isolation", 1.5, "late", task=3, job=7)
        assert Violation.from_dict(v.to_dict()) == v

    def test_optional_fields_omitted(self):
        doc = Violation("speed_bounds", 0.0, "bad").to_dict()
        assert "task" not in doc and "job" not in doc


class TestCollectorCap:
    def test_per_invariant_cap(self):
        sink = _Collector()
        for i in range(_MAX_PER_INVARIANT + 10):
            sink.add(Violation("ab_isolation", float(i), f"v{i}"))
        assert len(sink.violations) == _MAX_PER_INVARIANT
        assert "suppressed" in sink.violations[-1].message

    def test_cap_is_per_invariant(self):
        sink = _Collector()
        sink.add(Violation("ab_isolation", 0.0, "a"))
        sink.add(Violation("speed_bounds", 0.0, "b"))
        assert len(sink.violations) == 2


class TestAbIsolation:
    def test_miss_and_never_completed_flagged(self):
        trace = SimpleNamespace(
            jobs=[
                _job(CriticalityLevel.A, 1, 0, release=0.0, completion=1.5),
                _job(CriticalityLevel.B, 2, 0, release=0.0, completion=None),
                _job(CriticalityLevel.A, 3, 0, release=0.0, completion=0.9),
            ]
        )
        sink = _Collector()
        _check_ab_isolation(trace, _FakeTS(period=1.0), sim_end=10.0, sink=sink)
        assert len(sink.violations) == 2
        assert {v.task for v in sink.violations} == {1, 2}

    def test_level_c_and_stall_hogs_exempt(self):
        trace = SimpleNamespace(
            jobs=[
                _job(CriticalityLevel.C, 1, 0, release=0.0, completion=5.0),
                _job(
                    CriticalityLevel.A,
                    FAULT_TASK_BASE_ID,
                    0,
                    release=0.0,
                    completion=5.0,
                ),
            ]
        )
        sink = _Collector()
        _check_ab_isolation(trace, _FakeTS(period=1.0), sim_end=10.0, sink=sink)
        assert sink.violations == []

    def test_incomplete_job_inside_horizon_is_fine(self):
        trace = SimpleNamespace(
            jobs=[_job(CriticalityLevel.A, 1, 0, release=9.5, completion=None)]
        )
        sink = _Collector()
        _check_ab_isolation(trace, _FakeTS(period=1.0), sim_end=10.0, sink=sink)
        assert sink.violations == []


class TestSpeedBounds:
    def test_out_of_range_and_order(self):
        trace = SimpleNamespace(
            speed_changes=[(1.0, 0.5), (0.5, 0.7), (2.0, 1.5)]
        )
        sink = _Collector()
        _check_speed_bounds(trace, None, sink)
        msgs = [v.message for v in sink.violations]
        assert any("precedes" in m for m in msgs)
        assert any("outside" in m for m in msgs)

    def test_monitor_floor(self):
        trace = SimpleNamespace(speed_changes=[(1.0, 0.3), (2.0, 1.0)])
        sink = _Collector()
        _check_speed_bounds(trace, 0.6, sink)
        assert len(sink.violations) == 1
        assert "floor" in sink.violations[0].message

    def test_clean_sequence(self):
        trace = SimpleNamespace(speed_changes=[(1.0, 0.6), (2.0, 1.0)])
        sink = _Collector()
        _check_speed_bounds(trace, 0.6, sink)
        assert sink.violations == []


class TestGelOrder:
    def _trace(self, jobs, intervals):
        return SimpleNamespace(jobs=jobs, intervals=intervals)

    def _interval(self, task_id, job_index, start, end):
        return SimpleNamespace(
            task_id=task_id, job_index=job_index, start=start, end=end
        )

    def test_priority_inversion_detected(self):
        # Job (1,0) has the smaller GEL-v key and waits over (2, 3)
        # while lower-priority (2,0) runs: an inversion.
        jobs = [
            _job(CriticalityLevel.C, 1, 0, 2.0, 5.0, virtual_pp=1.0),
            _job(CriticalityLevel.C, 2, 0, 0.0, 4.0, virtual_pp=9.0),
        ]
        intervals = [
            self._interval(2, 0, 0.0, 4.0),
            self._interval(1, 0, 3.0, 5.0),
        ]
        sink = _Collector()
        _check_gel_order(self._trace(jobs, intervals), sink)
        assert len(sink.violations) >= 1
        assert sink.violations[0].task == 1

    def test_correct_order_is_clean(self):
        jobs = [
            _job(CriticalityLevel.C, 1, 0, 0.0, 2.0, virtual_pp=1.0),
            _job(CriticalityLevel.C, 2, 0, 0.0, 4.0, virtual_pp=9.0),
        ]
        intervals = [
            self._interval(1, 0, 0.0, 2.0),
            self._interval(2, 0, 2.0, 4.0),
        ]
        sink = _Collector()
        _check_gel_order(self._trace(jobs, intervals), sink)
        assert sink.violations == []


def test_invariant_names_are_stable():
    assert INVARIANT_NAMES == (
        "ab_isolation",
        "speed_bounds",
        "recovery_closure",
        "gel_order",
        "recovery_exit",
    )
