"""Shared fixtures for the fault-injection suite: one small, fast cell.

Everything here runs on a 2-CPU generated task set with a short horizon
so individual fault experiments stay in the ~0.1 s range; the large
seeded campaigns live behind the CLI (and CI's campaign smoke step),
not in tier-1.
"""

from __future__ import annotations

import pytest

from repro.faults.campaign import CampaignCell
from repro.faults.spec import FaultPlan
from repro.runtime.spec import (
    KernelSpec,
    MonitorSpec,
    RunSpec,
    ScenarioSpec,
    TaskSetSpec,
)
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import SHORT

PARAMS = GeneratorParams(m=2)
SEED = 11
HORIZON = 20.0


@pytest.fixture(scope="session")
def small_ts():
    return generate_taskset(SEED, PARAMS)


@pytest.fixture(scope="session")
def small_spec():
    """A small overload run with interval recording (gel_order needs it)."""
    return RunSpec(
        taskset=TaskSetSpec.generated(SEED, PARAMS),
        scenario=ScenarioSpec.from_scenario(SHORT),
        monitor=MonitorSpec("simple", 0.6),
        kernel=KernelSpec(record_intervals=True),
        horizon=HORIZON,
    )


@pytest.fixture(scope="session")
def empty_cell(small_spec):
    return CampaignCell(run=small_spec, plan=FaultPlan())


@pytest.fixture(scope="session")
def make_cell():
    """Factory: a cell over *spec* with the given faults."""

    def build(spec: RunSpec, *faults, seed: int = 5) -> CampaignCell:
        return CampaignCell(run=spec, plan=FaultPlan(faults=tuple(faults), seed=seed))

    return build
