"""Campaign construction, execution (serial and pool) and scorecards.

The backend byte-identity test here is the determinism contract: the
same cells produce byte-identical scorecard JSON whether they ran in
this process or across a process pool.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.faults.campaign import (
    CampaignCell,
    CampaignConfig,
    CellOutcome,
    Scorecard,
    build_campaign,
    run_campaign,
)
from repro.faults.spec import CpuStall, FaultPlan
from repro.runtime.spec import MonitorSpec

@pytest.fixture(scope="module")
def cells(small_spec, make_cell):
    """Three tiny cells: two clean monitors plus one stalled (violating)."""
    return [
        CampaignCell(run=small_spec, plan=FaultPlan()),
        CampaignCell(
            run=replace(small_spec, monitor=MonitorSpec("simple", 0.5)),
            plan=FaultPlan(),
        ),
        make_cell(small_spec, CpuStall(cpu=0, start=1.0, end=4.0)),
    ]


@pytest.fixture(scope="module")
def serial(cells):
    return run_campaign(cells, jobs=1)


class TestBuildCampaign:
    def test_fault_free_mode(self):
        config = CampaignConfig(seed=5, cells=10, fault_free=True, tasksets=1)
        built = build_campaign(config)
        assert len(built) == 10
        assert all(c.plan.is_empty for c in built)

    def test_fault_free_over_grid_rejected(self):
        config = CampaignConfig(seed=5, cells=1000, fault_free=True, tasksets=1)
        with pytest.raises(ValueError, match="grid"):
            build_campaign(config)

    def test_faulted_mode_appends_baselines(self):
        config = CampaignConfig(seed=5, cells=6, tasksets=1)
        built = build_campaign(config)
        faulted, baselines = built[:6], built[6:]
        assert all(not c.plan.is_empty for c in faulted)
        assert all(c.plan.is_empty for c in baselines)
        # One baseline per distinct run spec among the faulted cells.
        assert len(baselines) == len({c.run.key() for c in faulted})

    def test_build_is_seed_deterministic(self):
        config = CampaignConfig(seed=5, cells=6, tasksets=1)
        a = [c.key() for c in build_campaign(config)]
        b = [c.key() for c in build_campaign(config)]
        assert a == b
        other = CampaignConfig(seed=6, cells=6, tasksets=1)
        assert a != [c.key() for c in build_campaign(other)]

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(cells=0)
        with pytest.raises(ValueError):
            CampaignConfig(tasksets=0)


class TestBackendEquivalence:
    def test_pool_scorecard_is_byte_identical(self, cells, serial):
        pooled = run_campaign(cells, jobs=2)
        assert pooled.to_json() == serial.to_json()

    def test_outcomes_keep_submission_order(self, cells, serial):
        assert [o.key for o in serial.outcomes] == [c.key() for c in cells]


class TestScorecard:
    def test_violating_and_ok(self, serial):
        assert not serial.ok
        bad = serial.violating()
        assert len(bad) == 1
        assert bad[0].faulted
        assert "ab_isolation" in bad[0].violation_counts()

    def test_find_by_prefix(self, cells, serial):
        key = cells[2].key()
        assert serial.find(key[:12]).key == key
        with pytest.raises(KeyError, match="no campaign cell"):
            serial.find("ffffffffffff")
        with pytest.raises(KeyError, match="ambiguous"):
            serial.find("")

    def test_baseline_lookup(self, serial):
        bad = serial.violating()[0]
        base = serial.baseline_for(bad)
        assert base is not None
        assert not base.faulted
        assert base.run_key == bad.run_key

    def test_summary_fields(self, serial):
        s = serial.summary()
        assert s["cells"] == 3
        assert s["faulted"] == 1
        assert s["fault_free"] == 2
        assert s["violating_cells"] == 1
        assert s["violations"].get("ab_isolation", 0) >= 1
        assert s["pool_breaks"] == 0

    def test_render_mentions_failures(self, serial):
        text = serial.render()
        assert "FAIL" in text
        assert "ab_isolation" in text

    def test_save_load_roundtrip(self, serial, tmp_path):
        path = tmp_path / "scorecard.json"
        serial.save(str(path))
        again = Scorecard.load(str(path))
        assert again.to_json() == serial.to_json()

    def test_outcome_dict_roundtrip(self, serial):
        for o in serial.outcomes:
            again = CellOutcome.from_dict(o.to_dict())
            assert again == o
