"""FaultPlane behaviour: each fault kind observably perturbs a run,
empty planes are bit-neutral, and installation rules are enforced."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.experiments.runner import run_overload_experiment
from repro.faults.campaign import run_cell
from repro.faults.plane import FAULT_TASK_BASE_ID, FaultPlane
from repro.faults.spec import (
    ClockSkew,
    CpuStall,
    ExecutionSpike,
    FaultPlan,
    MonitorOutage,
    ReleaseJitter,
    SpeedCommandDrop,
)
from repro.runtime.spec import KernelSpec, ObsSpec
from repro.sim.diffcheck import fingerprint, fingerprint_digest

HORIZON = 20.0  # matches conftest.small_spec


def _run(ts, spec, plane=None):
    return run_overload_experiment(
        ts,
        spec.scenario.build(),
        spec.monitor,
        horizon=spec.horizon,
        confirm_window=spec.confirm_window,
        config=spec.kernel.to_config(),
        keep_artifacts=True,
        level_c_budgets=spec.level_c_budgets,
        fault_plane=plane,
    )


def _digest(out):
    return fingerprint_digest(fingerprint(out.trace, out.kernel, out.monitor))


@pytest.fixture(scope="module")
def baseline(small_ts, small_spec):
    return _run(small_ts, small_spec)


class TestNeutrality:
    def test_empty_plane_is_bit_identical_to_no_plane(
        self, small_ts, small_spec, baseline
    ):
        out = _run(small_ts, small_spec, plane=FaultPlane(FaultPlan()))
        assert _digest(out) == _digest(baseline)

    def test_baseline_run_satisfies_all_invariants(self, empty_cell):
        outcome = run_cell(empty_cell)
        assert outcome.ok
        assert not outcome.faulted
        assert set(outcome.checked) == {
            "ab_isolation",
            "speed_bounds",
            "recovery_closure",
            "gel_order",
            "recovery_exit",
        }

    def test_baseline_recovers(self, baseline):
        # The shared scenario must actually trigger recovery, or the
        # speed-path fault tests below would test nothing.
        assert baseline.result.episodes >= 1
        assert baseline.result.min_speed < 1.0


class TestCpuStall:
    def test_stall_starves_its_partition(self, small_spec, make_cell):
        outcome = run_cell(
            make_cell(small_spec, CpuStall(cpu=0, start=1.0, end=4.0))
        )
        assert outcome.faulted
        assert "ab_isolation" in outcome.violation_counts()
        # The synthetic hog itself is exempt; only real jobs are flagged.
        assert all(
            v.task is None or v.task < FAULT_TASK_BASE_ID
            for v in outcome.violations
        )

    def test_stall_cpu_out_of_range(self, small_spec, make_cell):
        with pytest.raises(ValueError, match="out of range"):
            run_cell(make_cell(small_spec, CpuStall(cpu=7, start=1.0, end=2.0)))


class TestExecutionSpike:
    def test_level_a_spike_breaks_isolation(self, small_spec, make_cell):
        outcome = run_cell(
            make_cell(
                small_spec,
                ExecutionSpike(0.0, HORIZON, factor=8.0, level="A"),
            )
        )
        assert "ab_isolation" in outcome.violation_counts()

    def test_spike_is_seed_deterministic(self, small_spec, make_cell):
        cell = make_cell(
            small_spec,
            ExecutionSpike(0.0, HORIZON, factor=2.0, prob=0.5, level="C"),
        )
        assert run_cell(cell).fingerprint == run_cell(cell).fingerprint


class TestMonitorOutage:
    def test_total_drop_blinds_the_monitor(self, small_spec, baseline, make_cell):
        outcome = run_cell(
            make_cell(small_spec, MonitorOutage(0.0, HORIZON, mode="drop"))
        )
        # The monitor never hears a completion, so it never confirms an
        # overload: no recovery episodes despite the baseline having some.
        assert baseline.result.episodes >= 1
        assert outcome.episodes == 0
        assert outcome.min_speed == 1.0

    def test_queue_mode_delivers_backlog(self, small_spec, baseline, make_cell):
        outcome = run_cell(
            make_cell(small_spec, MonitorOutage(0.5, 1.5, mode="queue"))
        )
        # The backlog arrives at the window end; the run still completes
        # and differs from the baseline (notifications arrived late).
        assert outcome.sim_end > 0
        assert outcome.fingerprint != _digest(baseline)


class TestSpeedCommandDrop:
    def test_dropped_restore_leaves_clock_stuck_slow(
        self, small_spec, small_ts, baseline, make_cell
    ):
        # Window opens just after the first slowdown is applied, so the
        # slowdown lands but every later command (incl. restore) is lost.
        t_slow = baseline.trace.speed_changes[0][0]
        outcome = run_cell(
            make_cell(small_spec, SpeedCommandDrop(t_slow + 1e-6, HORIZON))
        )
        counts = outcome.violation_counts()
        assert "recovery_closure" in counts
        assert outcome.min_speed < 1.0


class TestClockSkew:
    def test_requires_virtual_clock(self, small_spec, make_cell):
        spec = replace(
            small_spec,
            kernel=KernelSpec(use_virtual_time=False, record_intervals=True),
        )
        with pytest.raises(ValueError, match="use_virtual_time"):
            run_cell(make_cell(spec, ClockSkew(0.0, HORIZON, magnitude=0.01)))

    def test_skew_perturbs_the_run_deterministically(self, small_spec, baseline, make_cell):
        cell = make_cell(small_spec, ClockSkew(0.0, HORIZON, magnitude=0.05))
        a = run_cell(cell)
        assert a.fingerprint != _digest(baseline)
        assert a.fingerprint == run_cell(cell).fingerprint


class TestReleaseJitter:
    def test_jitter_perturbs_the_run_deterministically(self, small_spec, baseline, make_cell):
        cell = make_cell(small_spec, ReleaseJitter(0.0, HORIZON, magnitude=0.02))
        a = run_cell(cell)
        assert a.fingerprint != _digest(baseline)
        assert a.fingerprint == run_cell(cell).fingerprint


class TestInstallRules:
    def test_plane_is_single_use(self, small_ts, small_spec):
        plane = FaultPlane(
            FaultPlan(faults=(CpuStall(cpu=0, start=1.0, end=2.0),))
        )
        out = _run(small_ts, small_spec, plane=plane)
        with pytest.raises(RuntimeError, match="single-use"):
            plane.install(out.kernel, out.monitor)


class TestTraceEvents:
    def test_fault_events_are_emitted_when_tracing(self, small_spec, tmp_path, make_cell):
        spec = replace(small_spec, obs=ObsSpec(trace_dir=str(tmp_path)))
        cell = make_cell(
            spec,
            CpuStall(cpu=0, start=1.0, end=2.0),
            MonitorOutage(0.5, 1.5, mode="drop"),
        )
        run_cell(cell)
        (trace_file,) = tmp_path.glob("cell-*.jsonl")
        events = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        kinds = {e.get("fault") for e in events if e.get("ev") == "fault_inject"}
        assert kinds == {"cpu_stall", "monitor_outage"}
        # The stream meta ties the trace back to the campaign cell.
        assert events[0]["cell_key"] == cell.key()

    def test_obs_spec_does_not_change_cell_identity(self, small_spec, tmp_path, make_cell):
        fault = CpuStall(cpu=0, start=1.0, end=2.0)
        plain = make_cell(small_spec, fault)
        traced = make_cell(
            replace(small_spec, obs=ObsSpec(trace_dir=str(tmp_path))), fault
        )
        assert plain.key() == traced.key()
