"""Pure-logic tests for fault specs and plans (no simulation)."""

from __future__ import annotations

import pytest

from repro.faults.spec import (
    ClockSkew,
    CpuStall,
    ExecutionSpike,
    FaultPlan,
    MonitorOutage,
    ReleaseJitter,
    SpeedCommandDelay,
    SpeedCommandDrop,
    fault_from_dict,
    fault_to_dict,
    random_plan,
    unit_rand,
)

ALL_KINDS = [
    MonitorOutage(1.0, 2.0),
    MonitorOutage(1.0, 2.0, mode="queue"),
    SpeedCommandDelay(1.0, 2.0, delay=0.25),
    SpeedCommandDrop(1.0, 2.0),
    ClockSkew(1.0, 2.0, magnitude=0.01),
    ExecutionSpike(1.0, 2.0, factor=2.0, prob=0.5, level="B"),
    ReleaseJitter(1.0, 2.0, magnitude=0.005),
    CpuStall(cpu=1, start=1.0, end=2.0),
]


class TestValidation:
    def test_window_must_be_nonempty(self):
        with pytest.raises(ValueError):
            SpeedCommandDrop(2.0, 2.0)
        with pytest.raises(ValueError):
            SpeedCommandDrop(-0.5, 1.0)

    def test_monitor_outage_mode(self):
        with pytest.raises(ValueError):
            MonitorOutage(0.0, 1.0, mode="mangle")

    def test_spike_bounds(self):
        with pytest.raises(ValueError):
            ExecutionSpike(0.0, 1.0, factor=1.0)
        with pytest.raises(ValueError):
            ExecutionSpike(0.0, 1.0, factor=2.0, prob=0.0)
        with pytest.raises(ValueError):
            ExecutionSpike(0.0, 1.0, factor=2.0, level="E")

    def test_positive_magnitudes(self):
        with pytest.raises(ValueError):
            ClockSkew(0.0, 1.0, magnitude=0.0)
        with pytest.raises(ValueError):
            ReleaseJitter(0.0, 1.0, magnitude=-0.1)
        with pytest.raises(ValueError):
            SpeedCommandDelay(0.0, 1.0, delay=0.0)
        with pytest.raises(ValueError):
            CpuStall(cpu=-1, start=0.0, end=1.0)


class TestSerialization:
    @pytest.mark.parametrize("fault", ALL_KINDS, ids=lambda f: f.kind)
    def test_fault_dict_roundtrip(self, fault):
        assert fault_from_dict(fault_to_dict(fault)) == fault

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_from_dict({"kind": "gamma_ray", "start": 0.0, "end": 1.0})

    def test_plan_roundtrip_and_key_stability(self):
        plan = FaultPlan(faults=tuple(ALL_KINDS), seed=7)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.key() == plan.key()
        # key covers the seed, not just the faults
        assert FaultPlan(faults=tuple(ALL_KINDS), seed=8).key() != plan.key()

    def test_bad_format_rejected(self):
        doc = FaultPlan().to_dict()
        doc["format"] = "something-else"
        with pytest.raises(ValueError):
            FaultPlan.from_dict(doc)


class TestPlanEditing:
    def test_without_and_replacing(self):
        plan = FaultPlan(faults=(ALL_KINDS[0], ALL_KINDS[3], ALL_KINDS[4]), seed=3)
        assert plan.without(1).faults == (ALL_KINDS[0], ALL_KINDS[4])
        sub = plan.replacing(2, ALL_KINDS[6])
        assert sub.faults == (ALL_KINDS[0], ALL_KINDS[3], ALL_KINDS[6])
        assert sub.seed == 3

    def test_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(faults=(ALL_KINDS[0],)).is_empty


class TestDeterminism:
    def test_unit_rand_is_stable_and_keyed(self):
        a = unit_rand(1, "job", 5)
        assert a == unit_rand(1, "job", 5)
        assert 0.0 <= a < 1.0
        assert a != unit_rand(1, "job", 6)
        assert a != unit_rand(2, "job", 5)

    def test_random_plan_is_seed_deterministic(self):
        p1 = random_plan(seed=42, m=4, anchor=6.0, horizon=30.0)
        p2 = random_plan(seed=42, m=4, anchor=6.0, horizon=30.0)
        assert p1 == p2
        assert p1.key() == p2.key()
        assert p1 != random_plan(seed=43, m=4, anchor=6.0, horizon=30.0)

    def test_random_plan_respects_bounds(self):
        for seed in range(30):
            plan = random_plan(seed=seed, m=2, anchor=6.0, horizon=30.0, max_faults=3)
            assert 1 <= len(plan.faults) <= 3
            for f in plan.faults:
                assert 0.0 <= f.start < f.end <= 30.0
                if isinstance(f, CpuStall):
                    assert 0 <= f.cpu < 2
