"""Shrinker behaviour: minimality, target preservation, replayable
repro artifacts."""

from __future__ import annotations

import json

import pytest

from repro.faults.shrink import (
    REPRO_FORMAT,
    replay_repro,
    shrink_plan,
    write_repro,
)
from repro.faults.spec import CpuStall, ReleaseJitter

@pytest.fixture(scope="module")
def violating_cell(small_spec, make_cell):
    """A 2-fault plan where only the stall causes the violation — the
    jitter is noise the shrinker should remove."""
    return make_cell(
        small_spec,
        CpuStall(cpu=0, start=1.0, end=4.0),
        ReleaseJitter(5.0, 6.0, magnitude=0.005),
    )


@pytest.fixture(scope="module")
def shrunk(violating_cell):
    return shrink_plan(violating_cell)


class TestShrink:
    def test_clean_cell_rejected(self, empty_cell):
        with pytest.raises(ValueError, match="nothing to shrink"):
            shrink_plan(empty_cell)

    def test_noise_fault_removed(self, shrunk):
        assert len(shrunk.plan.faults) == 1
        assert isinstance(shrunk.plan.faults[0], CpuStall)

    def test_shrunk_plan_still_violates_target(self, shrunk):
        assert "ab_isolation" in shrunk.invariants
        assert not shrunk.outcome.ok

    def test_window_narrowed(self, shrunk, violating_cell):
        orig = violating_cell.plan.faults[0]
        kept = shrunk.plan.faults[0]
        assert kept.end - kept.start <= orig.end - orig.start

    def test_search_trail_recorded(self, shrunk):
        assert shrunk.evaluations >= 2
        assert any("remove" in s for s in shrunk.steps)

    def test_shrink_is_deterministic(self, shrunk, violating_cell):
        again = shrink_plan(violating_cell)
        assert again.plan == shrunk.plan
        assert again.evaluations == shrunk.evaluations


class TestReproArtifact:
    def test_write_and_replay(self, shrunk, tmp_path):
        path = tmp_path / "repro.json"
        write_repro(shrunk, str(path))
        doc = json.loads(path.read_text())
        assert doc["format"] == REPRO_FORMAT
        outcome, reproduced = replay_repro(str(path))
        assert reproduced
        assert outcome.fingerprint == shrunk.outcome.fingerprint

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "not-a-repro", "version": 1}))
        with pytest.raises(ValueError, match="not a repro-faultrepro"):
            replay_repro(str(path))
