"""Adversarial tampering suite for ``repro-mc2 verify``.

Every test starts from one honestly-produced campaign (merged artifact
+ manifest + campaign document), applies one attack, and asserts the
CLI convicts it — exit 1 with a :class:`~repro.provenance.VerifyReport`
naming the first divergent cell — while the untampered original passes
with exit 0.

Attacks, one per layer of the verifier:

* **byte-flip** a digit inside one cell of the merged artifact — caught
  by the artifact sha256 *and* attributed to that cell by the stored
  per-cell digests (``source: "artifact"``);
* **swap two cells'** result documents — artifact layer names position
  0 as first divergent;
* **consistent forgery**: doctor a result *and* recompute the artifact
  hash, per-cell digests, and manifest key so layers 1–2 are clean —
  only seeded **re-execution** convicts it (``source:
  "re-execution"``);
* **forge a manifest digest** without recomputing the manifest key —
  rejected at load (tampered manifest, never partial trust);
* **truncate the manifest** — rejected as invalid JSON.
"""

import json
import shutil

import pytest

from repro.cli import main
from repro.io.canonical import canonical_json, doc_digest
from repro.provenance import ProvenanceManifest, provenance_path
from repro.runtime.shard import (
    ShardedCampaign,
    prepare_campaign,
    work,
    write_merged_results,
)
from repro.runtime.spec import MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.workload.generator import GeneratorParams, taskset_seeds
from repro.workload.scenarios import SHORT

PARAMS = GeneratorParams(m=2)


@pytest.fixture(scope="module")
def honest_campaign(tmp_path_factory):
    """One honestly-merged sweep campaign, copied fresh per test."""
    root = tmp_path_factory.mktemp("honest")
    specs = [
        RunSpec(
            taskset=TaskSetSpec.generated(seed, PARAMS),
            scenario=ScenarioSpec.from_scenario(SHORT),
            monitor=MonitorSpec("simple", 0.6),
            horizon=2.0,
        )
        for seed in taskset_seeds(4, base_seed=47)
    ]
    cdir = prepare_campaign(root, ShardedCampaign("sweep", specs, shard_size=2))
    work(cdir)
    write_merged_results(cdir)
    return cdir


@pytest.fixture
def cdir(honest_campaign, tmp_path):
    """A private copy of the honest campaign this test may deface."""
    dest = tmp_path / honest_campaign.name
    shutil.copytree(honest_campaign, dest)
    return dest


def verify(cdir, *extra):
    """Run ``repro-mc2 verify`` and return (exit code, report dict)."""
    report = cdir / "report.json"
    code = main(["verify", str(cdir), "--all", "--report", str(report),
                 *extra])
    return code, json.loads(report.read_text())


class TestVerdicts:
    def test_untampered_campaign_passes(self, cdir):
        code, report = verify(cdir)
        assert code == 0
        assert report["ok"] and report["artifact"]["ok"]
        assert report["divergent"] == [] and report["error"] == ""
        assert len(report["reexecuted"]) == report["cells_total"] == 4

    def test_byte_flip_names_the_flipped_cell(self, cdir):
        merged = cdir / "merged.json"
        blob = merged.read_bytes()
        # Flip one digit of cell 0's event count: valid JSON, wrong bytes.
        at = blob.index(b'"events":') + len(b'"events":')
        flipped = b"5" if blob[at:at + 1] != b"5" else b"6"
        merged.write_bytes(blob[:at] + flipped + blob[at + 1:])

        code, report = verify(cdir, "--no-reexec")
        assert code == 1
        assert not report["ok"] and not report["artifact"]["ok"]
        first = report["first_divergent"]
        assert first["pos"] == 0 and first["source"] == "artifact"

    def test_swapped_cells_convicted_at_first_position(self, cdir):
        merged = cdir / "merged.json"
        doc = json.loads(merged.read_text())
        doc["results"][0], doc["results"][1] = (
            doc["results"][1], doc["results"][0],
        )
        merged.write_text(canonical_json(doc) + "\n")

        code, report = verify(cdir, "--no-reexec")
        assert code == 1
        first = report["first_divergent"]
        assert first["pos"] == 0 and first["source"] == "artifact"
        assert [c["pos"] for c in report["divergent"]] == [0, 1]

    def test_consistent_forgery_caught_only_by_reexecution(self, cdir):
        """Doctor cell 2 and re-attest everything downstream of it."""
        merged = cdir / "merged.json"
        doc = json.loads(merged.read_text())
        doc["results"][2]["miss_count"] = doc["results"][2]["miss_count"] + 7
        blob = (canonical_json(doc) + "\n").encode("utf-8")
        merged.write_bytes(blob)

        mpath = provenance_path(merged)
        mdoc = json.loads(mpath.read_text())
        mdoc["cells"][2]["digest"] = doc_digest(doc["results"][2])
        from repro.io.canonical import sha256_hex

        mdoc["artifact_sha256"] = sha256_hex(blob)
        del mdoc["key"]  # from_dict recomputes a consistent key
        forged = ProvenanceManifest.from_dict(mdoc)
        mpath.write_text(forged.canonical() + "\n")

        # Layers 1-2 are clean by construction...
        code, report = verify(cdir, "--no-reexec")
        assert code == 0 and report["artifact"]["ok"]
        # ...only re-execution convicts, naming the doctored cell.
        code, report = verify(cdir)
        assert code == 1
        first = report["first_divergent"]
        assert first["pos"] == 2 and first["source"] == "re-execution"

    def test_forged_manifest_digest_rejected_at_load(self, cdir):
        mpath = provenance_path(cdir / "merged.json")
        mdoc = json.loads(mpath.read_text())
        mdoc["cells"][1]["digest"] = "0" * 64  # key left stale
        mpath.write_text(json.dumps(mdoc) + "\n")

        code, report = verify(cdir)
        assert code == 1
        assert "tampered" in report["error"]
        assert report["checked"] == []  # no partial trust

    def test_truncated_manifest_rejected(self, cdir):
        mpath = provenance_path(cdir / "merged.json")
        text = mpath.read_text()
        mpath.write_text(text[: len(text) // 2])

        code, report = verify(cdir)
        assert code == 1
        assert "not valid JSON" in report["error"]

    def test_missing_artifact_fails(self, cdir):
        (cdir / "merged.json").unlink()
        code, report = verify(cdir, "--no-reexec")
        assert code == 1
        assert "cannot read artifact" in report["error"]

    def test_sampled_verify_is_seed_deterministic(self, cdir):
        report = cdir / "report.json"
        code = main(["verify", str(cdir), "--sample", "2", "--sample-seed",
                     "7", "--report", str(report)])
        assert code == 0
        first = json.loads(report.read_text())["reexecuted"]
        assert len(first) == 2
        code = main(["verify", str(cdir), "--sample", "2", "--sample-seed",
                     "7", "--report", str(report)])
        assert code == 0
        assert json.loads(report.read_text())["reexecuted"] == first
