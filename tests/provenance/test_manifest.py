"""Provenance manifest emission + identity across every merge path.

Pins the tentpole's core contract:

* every merge path — file-queue sweep merge, file-queue faults merge,
  the serial/pool in-memory ``write_results_artifact`` — writes a
  ``repro-provenance`` v1 manifest as a *sibling* file;
* emission is result-neutral: the merged artifact's bytes are exactly
  the pre-provenance layout (no embedded provenance key), and the
  serial ``--merged-out`` artifact is byte-identical to the sharded
  merge of the same cells;
* the manifest attests truthfully: ``artifact_sha256`` matches the
  file on disk and every per-cell digest matches the cell document
  actually stored in the artifact;
* manifest identity (``key()``) is owner- and code-invariant: the same
  cells produce the same key no matter which workers ran them or how
  shards were interleaved.
"""

import json
import pathlib

import pytest

from repro.faults.campaign import CampaignConfig, build_campaign
from repro.io.canonical import doc_digest, sha256_hex
from repro.provenance import (
    ProvenanceError,
    ProvenanceManifest,
    load_manifest,
    provenance_path,
)
from repro.runtime.executor import make_executor
from repro.runtime.shard import (
    ShardedCampaign,
    prepare_campaign,
    work,
    write_merged_results,
    write_merged_scorecard,
    write_results_artifact,
)
from repro.runtime.spec import MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.workload.generator import GeneratorParams, taskset_seeds
from repro.workload.scenarios import SHORT

PARAMS = GeneratorParams(m=2)


def small_grid(n=4, horizon=2.0):
    specs = []
    for seed in taskset_seeds(n, base_seed=31):
        specs.append(
            RunSpec(
                taskset=TaskSetSpec.generated(seed, PARAMS),
                scenario=ScenarioSpec.from_scenario(SHORT),
                monitor=MonitorSpec("simple", 0.6),
                horizon=horizon,
            )
        )
    return specs


@pytest.fixture(scope="module")
def grid():
    return small_grid()


@pytest.fixture(scope="module")
def merged_campaign(grid, tmp_path_factory):
    """A completed file-queue sweep campaign with its merged artifact."""
    root = tmp_path_factory.mktemp("prov")
    cdir = prepare_campaign(root, ShardedCampaign("sweep", grid, shard_size=2))
    work(cdir, owner="w-alpha")
    dest = write_merged_results(cdir)
    return cdir, dest


class TestEmission:
    def test_file_queue_sweep_merge_emits_manifest(self, merged_campaign):
        cdir, dest = merged_campaign
        mpath = provenance_path(dest)
        assert mpath == dest.with_name("merged.provenance.json")
        assert mpath.is_file()
        manifest = load_manifest(mpath)
        campaign = ShardedCampaign.from_dict(
            json.loads((cdir / "campaign.json").read_text())
        )
        assert manifest.kind == "sweep"
        assert manifest.campaign == campaign.campaign_key
        assert [k for k, _ in manifest.cells] == list(campaign.cell_keys)
        assert manifest.kernel["backends"] == ["reference"]
        assert manifest.code["source_sha256"]

    def test_manifest_attests_the_artifact_truthfully(self, merged_campaign):
        _, dest = merged_campaign
        manifest = load_manifest(provenance_path(dest))
        blob = dest.read_bytes()
        assert manifest.artifact_sha256 == sha256_hex(blob)
        docs = json.loads(blob)["results"]
        assert len(docs) == len(manifest.cells)
        for doc, (_, digest) in zip(docs, manifest.cells):
            assert doc_digest(doc) == digest

    def test_owners_record_which_worker_committed_each_shard(
        self, merged_campaign
    ):
        _, dest = merged_campaign
        manifest = load_manifest(provenance_path(dest))
        assert len(manifest.owners) == 2  # 4 cells / shard_size 2
        assert {o["owner"] for o in manifest.owners} == {"w-alpha"}

    def test_faults_merge_emits_manifest(self, tmp_path):
        cells = build_campaign(
            CampaignConfig(seed=9, cells=4, tasksets=1, horizon=3.0)
        )
        cdir = prepare_campaign(
            tmp_path, ShardedCampaign("faults", cells, shard_size=2)
        )
        work(cdir)
        dest = write_merged_scorecard(cdir)
        manifest = load_manifest(provenance_path(dest))
        assert manifest.kind == "faults"
        outcomes = json.loads(dest.read_text())["outcomes"]
        for doc, (_, digest) in zip(outcomes, manifest.cells):
            assert doc_digest(doc) == digest
        assert manifest.artifact_sha256 == sha256_hex(dest.read_bytes())

    def test_serial_merged_out_emits_manifest(self, grid, tmp_path):
        out = tmp_path / "serial.json"
        executor = make_executor(jobs=1, merged_out=str(out), shard_size=2)
        executor.run(grid)
        manifest = load_manifest(provenance_path(out))
        assert manifest.artifact == "serial.json"
        assert manifest.artifact_sha256 == sha256_hex(out.read_bytes())
        # The sibling campaign document makes the artifact verifiable
        # standalone.
        assert (tmp_path / "serial.campaign.json").is_file()

    def test_pool_merged_out_matches_serial(self, grid, tmp_path):
        serial_out = tmp_path / "serial.json"
        make_executor(jobs=1, merged_out=str(serial_out), shard_size=2).run(grid)
        pool_out = tmp_path / "pool.json"
        make_executor(jobs=2, merged_out=str(pool_out), shard_size=2).run(grid)
        assert pool_out.read_bytes() == serial_out.read_bytes()
        a = load_manifest(provenance_path(serial_out))
        b = load_manifest(provenance_path(pool_out))
        assert a.key() == b.key()

    def test_write_results_artifact_matches_sharded_bytes(
        self, grid, merged_campaign, tmp_path
    ):
        """Serial in-memory merge == file-queue merge: bytes and key."""
        from repro.runtime.executor import SerialBackend

        _, sharded_dest = merged_campaign
        results = SerialBackend().run(grid)
        out = write_results_artifact(grid, results, tmp_path / "mem.json",
                                     shard_size=2)
        assert out.read_bytes() == sharded_dest.read_bytes()
        a = load_manifest(provenance_path(out))
        b = load_manifest(provenance_path(sharded_dest))
        assert a.key() == b.key()


class TestResultNeutrality:
    def test_artifact_has_no_embedded_provenance(self, merged_campaign):
        _, dest = merged_campaign
        doc = json.loads(dest.read_text())
        assert set(doc) == {"campaign", "format", "results", "summary",
                            "version"}

    def test_remerge_is_byte_stable_and_rewrites_manifest(
        self, merged_campaign
    ):
        cdir, dest = merged_campaign
        before = dest.read_bytes()
        key_before = load_manifest(provenance_path(dest)).key()
        write_merged_results(cdir)
        assert dest.read_bytes() == before
        assert load_manifest(provenance_path(dest)).key() == key_before


class TestIdentity:
    def test_key_is_owner_invariant(self, grid, merged_campaign, tmp_path):
        """Different workers / interleavings ⇒ the same manifest key."""
        _, dest = merged_campaign
        reference = load_manifest(provenance_path(dest))

        cdir = prepare_campaign(
            tmp_path, ShardedCampaign("sweep", grid, shard_size=2)
        )
        # Two workers, one shard each (max_shards=1 alternates owners).
        work(cdir, max_shards=1, owner="w-bravo")
        work(cdir, max_shards=1, owner="w-charlie")
        other = load_manifest(provenance_path(write_merged_results(cdir)))
        assert {o["owner"] for o in other.owners} == {"w-bravo", "w-charlie"}
        assert other.owners != reference.owners
        assert other.key() == reference.key()

    def test_key_excludes_code_and_artifact_name(self, merged_campaign):
        _, dest = merged_campaign
        manifest = load_manifest(provenance_path(dest))
        doc = manifest.to_dict()
        doc["artifact"] = "renamed.json"
        doc["code"] = {"package": "999", "source_sha256": "f" * 64}
        doc["owners"] = []
        del doc["key"]
        assert ProvenanceManifest.from_dict(doc).key() == manifest.key()

    def test_key_covers_cell_digests(self, merged_campaign):
        _, dest = merged_campaign
        manifest = load_manifest(provenance_path(dest))
        doc = manifest.to_dict()
        doc["cells"][0]["digest"] = "0" * 64
        del doc["key"]
        assert ProvenanceManifest.from_dict(doc).key() != manifest.key()

    def test_recorded_key_is_checked_on_load(self, merged_campaign):
        _, dest = merged_campaign
        doc = json.loads(provenance_path(dest).read_text())
        doc["cells"][0]["digest"] = "0" * 64  # forged, key left stale
        with pytest.raises(ProvenanceError, match="tampered"):
            ProvenanceManifest.from_dict(doc)
