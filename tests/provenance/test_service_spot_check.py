"""Coordinator ``--verify-fraction`` spot-checks against dishonest workers.

A coordinator started with ``verify_fraction=1.0`` re-executes every
streamed cell of each untrusted worker's shard before committing it.
A worker that corrupts its ``cell_result`` frames is convicted:

* its shard is **quarantined** — re-queued, never committed;
* the owner is barred: its next lease request returns
  ``NoWork(quarantined=True)`` and the worker loop exits with code 3;
* an honest worker then re-runs the refused shards and the final
  merged artifact is **byte-identical to serial** — corruption costs
  latency, never correctness;
* the verdict is observable: the jobs table counts the quarantine, the
  coordinator telemetry stream records re-executed cells and failures,
  and the fetched provenance manifest matches the honest bytes.
"""

import asyncio
import json
import threading

import pytest

from repro.io.results_json import run_result_to_dict
from repro.provenance import load_manifest, provenance_path
from repro.runtime.executor import SerialBackend
from repro.runtime.shard import (
    ShardedCampaign,
    prepare_campaign,
    work,
    write_merged_results,
)
from repro.runtime.spec import MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.serve import protocol as wire
from repro.serve.client import ServiceClient
from repro.serve.coordinator import Coordinator
from repro.serve.worker import WorkerClient
from repro.workload.generator import GeneratorParams, taskset_seeds
from repro.workload.scenarios import SHORT

PARAMS = GeneratorParams(m=2)


def small_grid(n=4, horizon=2.0):
    return [
        RunSpec(
            taskset=TaskSetSpec.generated(seed, PARAMS),
            scenario=ScenarioSpec.from_scenario(SHORT),
            monitor=MonitorSpec("simple", 0.6),
            horizon=horizon,
        )
        for seed in taskset_seeds(n, base_seed=61)
    ]


@pytest.fixture(scope="module")
def grid():
    return small_grid()


class _Service:
    """A verifying coordinator on an ephemeral port, in its own loop."""

    def __init__(self, root, **coord_kwargs):
        self.coord = Coordinator(root, **coord_kwargs)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.coord.start())
        self._ready.set()
        try:
            self._loop.run_until_complete(self.coord.serve_forever())
        except asyncio.CancelledError:
            pass

    def start(self):
        self._thread.start()
        assert self._ready.wait(10.0), "coordinator did not start"
        return self

    @property
    def addr(self):
        return f"127.0.0.1:{self.coord.port}"

    def stop(self):
        def cancel_all():
            for task in asyncio.all_tasks(self._loop):
                task.cancel()

        self._loop.call_soon_threadsafe(cancel_all)
        self._thread.join(timeout=10.0)
        self._loop.close()


@pytest.fixture
def make_service(tmp_path):
    services = []

    def factory(name="serve", **coord_kwargs):
        svc = _Service(tmp_path / name, **coord_kwargs).start()
        services.append(svc)
        return svc

    yield factory
    for svc in services:
        svc.stop()


class _DishonestWorker(WorkerClient):
    """Executes cells correctly, then lies about what they produced."""

    def _execute_grant(self, grant):
        rows = super()._execute_grant(grant)
        return [
            (pos, dict(doc, miss_count=int(doc.get("miss_count", 0)) + 5),
             cached, wall_ns)
            for pos, doc, cached, wall_ns in rows
        ]


def quiet(*_):
    pass


class TestSpotCheck:
    def test_dishonest_worker_quarantined_honest_rerun_converges(
        self, grid, tmp_path, make_service
    ):
        ref_dir = prepare_campaign(
            tmp_path / "ref", ShardedCampaign("sweep", grid, shard_size=2)
        )
        work(ref_dir)
        reference = write_merged_results(ref_dir).read_bytes()

        svc = make_service(verify_fraction=1.0, verify_seed=3)
        campaign = ShardedCampaign("sweep", grid, shard_size=2)
        with ServiceClient(svc.addr) as client:
            client.submit(campaign.to_dict())

            # The dishonest worker corrupts every shard it touches; the
            # spot-check refuses each one and then bars the owner, so
            # its loop exits with the quarantine code.
            mallory = _DishonestWorker(svc.addr, owner="mallory",
                                       poll_s=0.02, once=True, log=quiet)
            assert mallory.run() == 3
            assert mallory.shards_done == 0  # nothing it sent was kept

            row = next(r for r in client.jobs()
                       if r["key"] == campaign.campaign_key)
            assert row["shards_done"] == 0
            assert row["quarantined"] >= 1

            # An honest worker re-runs the refused shards to completion.
            honest = WorkerClient(svc.addr, owner="honest", poll_s=0.02,
                                  once=True, log=quiet)
            assert honest.run() == 0
            row = client.wait(campaign.campaign_key, poll_s=0.02,
                              timeout_s=60)
            assert row["merged"] and row["manifest"]

            # The fetched provenance manifest travels over the wire.
            replies = client._rpc(
                wire.FetchRequest(campaign=campaign.campaign_key),
                stream_until=wire.FetchDone,
            )
            done = replies[-1]
            assert isinstance(done, wire.FetchDone)

        merged = (svc.coord.root / row["dir"] / "merged.json").read_bytes()
        assert merged == reference

        manifest = load_manifest(
            provenance_path(svc.coord.root / row["dir"] / "merged.json")
        )
        assert done.manifest["key"] == manifest.key()
        # Quarantined results never reach the artifact: every committed
        # shard is owned by the honest worker.
        assert {o["owner"] for o in manifest.owners} == {"honest"}

        # The verdict is visible in coordinator telemetry.
        telem = (svc.coord.root / row["dir"]
                 / "telemetry" / "coordinator.ndjson")
        records = [json.loads(line)
                   for line in telem.read_text().splitlines() if line]
        last = records[-1]
        assert last["quarantines"] >= 1
        assert last["verify_failures"] >= 1
        assert last["cells_verified"] >= len(grid)

    def test_honest_workers_unaffected_by_spot_checks(
        self, grid, tmp_path, make_service
    ):
        ref = [run_result_to_dict(r) for r in SerialBackend().run(grid)]
        svc = make_service(verify_fraction=1.0)
        campaign = ShardedCampaign("sweep", grid, shard_size=2)
        with ServiceClient(svc.addr) as client:
            client.submit(campaign.to_dict())
            honest = WorkerClient(svc.addr, owner="w1", poll_s=0.02,
                                  once=True, log=quiet)
            assert honest.run() == 0
            row = client.wait(campaign.campaign_key, poll_s=0.02,
                              timeout_s=60)
            assert row["quarantined"] == 0
            cells = client.fetch(campaign.campaign_key)
        assert [doc for doc, _, _ in cells] == ref

    def test_verify_fraction_validated(self, tmp_path):
        with pytest.raises(ValueError):
            Coordinator(tmp_path, verify_fraction=1.5)
        with pytest.raises(ValueError):
            Coordinator(tmp_path, verify_fraction=-0.1)

    def test_partial_fraction_samples_deterministically(
        self, grid, tmp_path
    ):
        """fraction=0.5 re-executes half of each shard, same cells each
        time (seeded by shard id), so resubmission cannot dodge it."""
        coord = Coordinator(tmp_path / "c", verify_fraction=0.5,
                            verify_seed=11)
        (tmp_path / "c").mkdir(parents=True, exist_ok=True)
        coord.recover()
        campaign = ShardedCampaign("sweep", grid, shard_size=4)
        (ack,) = coord.handle(wire.Submit(campaign=campaign.to_dict()))
        assert ack.created
        (grant,) = coord.handle(wire.LeaseRequest(owner="w1"))
        docs = [run_result_to_dict(r) for r in SerialBackend().run(grid)]
        for pos in range(grant.start, grant.stop):
            coord.handle(wire.CellResult(
                campaign=grant.campaign, shard=grant.shard, pos=pos,
                doc=docs[pos], owner="w1",
            ))
        state = coord.campaigns[grant.campaign]
        shard = next(s for s in state.campaign.shards
                     if s.shard_id == grant.shard)
        sample = coord._spot_check(state, shard)
        assert sample == []  # honest docs pass
        (ok,) = coord.handle(wire.ShardDone(
            campaign=grant.campaign, shard=grant.shard, owner="w1",
        ))
        assert isinstance(ok, wire.ShardOk) and ok.accepted
