"""Tests for result/figure JSON export."""

import json

from repro.experiments.figures import FigureData, FigureSeries, SeriesPoint
from repro.experiments.metrics import RunResult
from repro.io.results_json import (
    figure_to_dict,
    figure_to_json,
    results_to_json,
    run_result_to_dict,
)
from repro.util.stats import ConfidenceInterval


def sample_result():
    return RunResult(
        scenario="SHORT", monitor="SIMPLE(s=0.6)", dissipation=0.769,
        truncated=False, min_speed=0.6, miss_count=195, episodes=1,
        max_response_c=0.594, sim_end=1.77, events=2802,
    )


def sample_figure():
    ci = ConfidenceInterval(mean=0.77, half_width=0.01, confidence=0.95, n=20)
    return FigureData(
        figure_id="Fig. 6", title="t", xlabel="s", ylabel="d",
        series=(FigureSeries(label="SHORT",
                             points=(SeriesPoint(x=0.6, ci=ci),)),),
    )


class TestRunResultExport:
    def test_dict_has_all_fields(self):
        d = run_result_to_dict(sample_result())
        assert d["scenario"] == "SHORT"
        assert d["dissipation"] == 0.769
        assert d["events"] == 2802

    def test_batch_json(self):
        doc = json.loads(results_to_json([sample_result(), sample_result()]))
        assert doc["format"] == "repro-results"
        assert len(doc["runs"]) == 2


class TestFigureExport:
    def test_dict_structure(self):
        d = figure_to_dict(sample_figure())
        assert d["figure_id"] == "Fig. 6"
        pt = d["series"][0]["points"][0]
        assert pt["x"] == 0.6
        assert pt["mean"] == 0.77
        assert pt["ci_half_width"] == 0.01
        assert pt["n"] == 20

    def test_json_parses(self):
        doc = json.loads(figure_to_json(sample_figure()))
        assert doc["format"] == "repro-figure"
        assert doc["series"][0]["label"] == "SHORT"
