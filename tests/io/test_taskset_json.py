"""Tests for task-set JSON serialization."""

import json

import pytest

from repro.io.taskset_json import (
    task_from_dict,
    task_to_dict,
    taskset_from_json,
    taskset_to_json,
)
from repro.model.task import CriticalityLevel as L
from repro.workload.generator import GeneratorParams, generate_taskset
from tests.conftest import make_a_task, make_c_task


class TestTaskRoundtrip:
    def test_level_c_roundtrip(self):
        t = make_c_task(3, 0.05, 0.01, y=0.042, tolerance=0.13, name="nav")
        back = task_from_dict(task_to_dict(t))
        assert back == t

    def test_level_a_roundtrip(self):
        t = make_a_task(0, 0.025, 0.001, cpu=2)
        back = task_from_dict(task_to_dict(t))
        assert back == t

    def test_optional_fields_omitted(self):
        t = make_c_task(0, 4.0, 1.0)
        d = task_to_dict(t)
        assert "tolerance" not in d
        assert "cpu" not in d
        assert "name" not in d
        assert "phase" not in d

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="criticality level"):
            task_from_dict({"task_id": 0, "level": "Z", "period": 1.0, "pwcets": {}})

    def test_unknown_pwcet_level_rejected(self):
        with pytest.raises(ValueError, match="PWCET level"):
            task_from_dict({"task_id": 0, "level": "D", "period": 1.0,
                            "pwcets": {"Q": 1.0}})


class TestTaskSetRoundtrip:
    def test_generated_set_roundtrip(self):
        ts = generate_taskset(2015)
        back = taskset_from_json(taskset_to_json(ts))
        assert back.m == ts.m
        assert len(back) == len(ts)
        for a, b in zip(ts, back):
            assert a == b

    def test_small_platform_roundtrip(self):
        ts = generate_taskset(3, GeneratorParams(m=2))
        back = taskset_from_json(taskset_to_json(ts))
        assert [t.tolerance for t in back.level(L.C)] == [
            t.tolerance for t in ts.level(L.C)
        ]

    def test_document_structure(self):
        ts = generate_taskset(1, GeneratorParams(m=2))
        doc = json.loads(taskset_to_json(ts))
        assert doc["format"] == "repro-taskset"
        assert doc["version"] == 1
        assert doc["m"] == 2
        assert len(doc["tasks"]) == len(ts)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            taskset_from_json(json.dumps({"format": "other", "version": 1, "m": 1}))

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            taskset_from_json(
                json.dumps({"format": "repro-taskset", "version": 99, "m": 1,
                            "tasks": []})
            )

    def test_invalid_task_rejected_by_model(self):
        doc = {
            "format": "repro-taskset", "version": 1, "m": 1,
            "tasks": [{"task_id": 0, "level": "C", "period": -1.0,
                       "pwcets": {"C": 0.1}, "relative_pp": 0.0}],
        }
        with pytest.raises(ValueError, match="period"):
            taskset_from_json(json.dumps(doc))
