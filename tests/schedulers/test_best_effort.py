"""Tests for the level-D best-effort policy."""

from repro.model.job import Job
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.schedulers.best_effort import pick_best_effort


def djob(tid, release, index=0):
    t = Task(task_id=tid, level=L.D, period=1.0)
    return Job(task=t, index=index, release=release, exec_time=0.5)


class TestPickBestEffort:
    def test_fifo_by_release(self):
        early = djob(1, 0.0)
        late = djob(0, 1.0)
        assert pick_best_effort([late, early]) is early

    def test_tie_by_task_id_then_index(self):
        a = djob(0, 0.0, index=1)
        b = djob(1, 0.0, index=0)
        assert pick_best_effort([b, a]) is a
        a0 = djob(0, 0.0, index=0)
        assert pick_best_effort([a, a0]) is a0

    def test_empty(self):
        assert pick_best_effort([]) is None
