"""Tests for global GEL-v selection (repro.schedulers.gel_global)."""

from repro.model.job import Job
from repro.schedulers.gel_global import select_gel_jobs
from tests.conftest import make_c_task


def cjob(tid, vpp, index=0, running_on=None):
    j = Job(task=make_c_task(tid, 10.0, 1.0), index=index, release=0.0, exec_time=1.0)
    j.virtual_pp = vpp
    j.running_on = running_on
    return j


class TestSelectGelJobs:
    def test_top_k_by_virtual_pp(self):
        jobs = [cjob(0, 5.0), cjob(1, 3.0), cjob(2, 4.0)]
        out = select_gel_jobs(jobs, free_cpus=[0, 1])
        chosen = {j.task.task_id for j in out.values() if j is not None}
        assert chosen == {1, 2}

    def test_fewer_jobs_than_cpus(self):
        jobs = [cjob(0, 5.0)]
        out = select_gel_jobs(jobs, free_cpus=[0, 1, 2])
        assert sum(j is not None for j in out.values()) == 1

    def test_no_free_cpus(self):
        assert select_gel_jobs([cjob(0, 1.0)], free_cpus=[]) == {}

    def test_no_jobs(self):
        out = select_gel_jobs([], free_cpus=[0, 1])
        assert out == {0: None, 1: None}

    def test_running_job_stays_on_its_cpu(self):
        a = cjob(0, 1.0, running_on=1)
        b = cjob(1, 2.0)
        out = select_gel_jobs([a, b], free_cpus=[0, 1])
        assert out[1] is a
        assert out[0] is b

    def test_running_job_on_unavailable_cpu_migrates(self):
        a = cjob(0, 1.0, running_on=5)  # its CPU got claimed by level A/B
        out = select_gel_jobs([a], free_cpus=[0])
        assert out[0] is a

    def test_preempted_job_is_simply_not_selected(self):
        low = cjob(0, 9.0, running_on=0)
        hi1 = cjob(1, 1.0)
        hi2 = cjob(2, 2.0)
        out = select_gel_jobs([low, hi1, hi2], free_cpus=[0, 1])
        selected = {j.task.task_id for j in out.values()}
        assert selected == {1, 2}

    def test_deterministic_tie_break(self):
        a = cjob(0, 3.0)
        b = cjob(1, 3.0)
        out = select_gel_jobs([b, a], free_cpus=[0])
        assert out[0] is a  # lower task id wins the PP tie
