"""Tests for level-A dispatch tables (repro.schedulers.table_driven)."""

import pytest

from repro.model.job import Job
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.schedulers.table_driven import (
    build_preemptive_table,
    build_table,
    pick_table_driven,
    rm_key,
)


def a_task(tid, period, pwcet_a, cpu=0, phase=0.0):
    return Task(task_id=tid, level=L.A, period=period,
                pwcets={L.A: pwcet_a, L.C: pwcet_a / 20.0}, cpu=cpu, phase=phase)


class TestContiguousTable:
    def test_single_task_slots_at_releases(self):
        tbl = build_table([a_task(0, 10.0, 2.0)], cpu=0)
        assert tbl.hyperperiod == 10.0
        assert tbl.slot_start(0, 0) == 0.0
        assert tbl.slot_start(0, 3) == 30.0
        assert tbl.allocation(0, 0) == pytest.approx(2.0)

    def test_two_tasks_serialized(self):
        tbl = build_table([a_task(0, 10.0, 2.0), a_task(1, 10.0, 3.0)], cpu=0)
        assert tbl.slot_start(0, 0) == 0.0
        assert tbl.slot_start(1, 0) == 2.0
        assert tbl.busy_fraction() == pytest.approx(0.5)

    def test_harmonic_full_utilization_packs(self):
        tbl = build_table([a_task(0, 10.0, 5.0), a_task(1, 20.0, 10.0)], cpu=0)
        assert tbl.busy_fraction() == pytest.approx(1.0)

    def test_infeasible_contiguous_placement_raises(self):
        # A 6-unit slot cannot fit contiguously around a 5-period task at
        # full utilization.
        with pytest.raises(ValueError, match="contiguous"):
            build_table([a_task(0, 5.0, 2.5), a_task(1, 20.0, 10.0)], cpu=0)

    def test_rejects_wrong_level(self):
        c = Task(task_id=0, level=L.C, period=4.0, pwcets={L.C: 1.0}, relative_pp=3.0)
        with pytest.raises(ValueError, match="level A"):
            build_table([c], cpu=0)

    def test_rejects_wrong_cpu(self):
        with pytest.raises(ValueError, match="pinned"):
            build_table([a_task(0, 10.0, 2.0, cpu=1)], cpu=0)

    def test_empty(self):
        tbl = build_table([], cpu=0)
        assert tbl.hyperperiod == 0.0


class TestPreemptiveTable:
    def test_splits_long_slot_around_short_period(self):
        """The case contiguous placement cannot handle."""
        tbl = build_preemptive_table(
            [a_task(0, 5.0, 2.5), a_task(1, 20.0, 10.0)], cpu=0
        )
        assert tbl.busy_fraction() == pytest.approx(1.0)
        # Long task's first job is split into several sub-slots.
        slots = tbl.job_slots(1, 0)
        assert len(slots) >= 2
        assert sum(e - s for s, e in slots) == pytest.approx(10.0)

    def test_full_allocation_for_every_job(self):
        tasks = [a_task(0, 25.0, 10.0), a_task(1, 50.0, 15.0), a_task(2, 100.0, 30.0)]
        tbl = build_preemptive_table(tasks, cpu=0)
        for t in tasks:
            per = tbl.jobs_per_hp[t.task_id]
            for k in range(per):
                assert tbl.allocation(t.task_id, k) == pytest.approx(t.pwcet(L.A))

    def test_slots_never_overlap(self):
        tasks = [a_task(0, 25.0, 10.0), a_task(1, 50.0, 15.0), a_task(2, 100.0, 30.0)]
        tbl = build_preemptive_table(tasks, cpu=0)
        ordered = sorted(tbl.slots, key=lambda s: s.start)
        for a, b in zip(ordered, ordered[1:]):
            assert a.end <= b.start + 1e-12

    def test_slots_respect_release_and_deadline(self):
        tasks = [a_task(0, 25.0, 10.0), a_task(1, 50.0, 30.0)]
        tbl = build_preemptive_table(tasks, cpu=0)
        for s in tbl.slots:
            t = next(t for t in tasks if t.task_id == s.task_id)
            release = s.job_within_hp * t.period
            assert s.start >= release - 1e-12
            assert s.end <= release + t.period + 1e-9

    def test_harmonic_100_percent_feasible(self):
        """The paper's generator produces exactly this shape."""
        tasks = [a_task(0, 25.0, 5.0), a_task(1, 50.0, 20.0), a_task(2, 100.0, 40.0)]
        # u = 0.2 + 0.4 + 0.4 = 1.0
        tbl = build_preemptive_table(tasks, cpu=0)
        assert tbl.busy_fraction() == pytest.approx(1.0)

    def test_overcommitted_raises(self):
        with pytest.raises(ValueError):
            build_preemptive_table([a_task(0, 10.0, 6.0), a_task(1, 20.0, 10.0)], cpu=0)

    def test_nonharmonic_rm_unschedulable_raises(self):
        # Classic RM counterexample beyond the bound: u = 0.5 + 0.5 over
        # non-harmonic periods misses a deadline.
        with pytest.raises(ValueError):
            build_preemptive_table(
                [a_task(0, 10.0, 5.0), a_task(1, 14.0, 7.0)], cpu=0
            )


class TestDispatchOrder:
    def test_rm_key_orders_by_period(self):
        short = Job(task=a_task(1, 10.0, 2.0), index=0, release=0.0, exec_time=2.0)
        long_ = Job(task=a_task(0, 20.0, 2.0), index=0, release=0.0, exec_time=2.0)
        assert rm_key(short) < rm_key(long_)
        assert pick_table_driven([long_, short]) is short

    def test_tie_by_task_id(self):
        j0 = Job(task=a_task(0, 10.0, 2.0), index=0, release=0.0, exec_time=2.0)
        j1 = Job(task=a_task(1, 10.0, 2.0), index=0, release=0.0, exec_time=2.0)
        assert pick_table_driven([j1, j0]) is j0

    def test_empty(self):
        assert pick_table_driven([]) is None
