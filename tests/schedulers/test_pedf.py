"""Tests for partitioned EDF (repro.schedulers.pedf)."""

from repro.model.job import Job
from repro.schedulers.pedf import edf_key, pick_edf
from tests.conftest import make_b_task


def bjob(tid, period, release, deadline=None, index=0):
    j = Job(task=make_b_task(tid, period, 0.1, cpu=0), index=index,
            release=release, exec_time=0.5)
    j.deadline = deadline
    return j


class TestEdfKey:
    def test_explicit_deadline_used(self):
        j = bjob(0, 10.0, 0.0, deadline=4.0)
        assert edf_key(j)[0] == 4.0

    def test_implicit_deadline_release_plus_period(self):
        j = bjob(0, 10.0, 3.0)
        assert edf_key(j)[0] == 13.0


class TestPickEdf:
    def test_earliest_deadline_wins(self):
        a = bjob(0, 10.0, 0.0, deadline=10.0)
        b = bjob(1, 20.0, 0.0, deadline=5.0)
        assert pick_edf([a, b]) is b

    def test_tie_broken_by_task_id(self):
        a = bjob(0, 10.0, 0.0, deadline=10.0)
        b = bjob(1, 10.0, 0.0, deadline=10.0)
        assert pick_edf([b, a]) is a

    def test_tie_broken_by_index(self):
        a0 = bjob(0, 10.0, 0.0, deadline=10.0, index=0)
        a1 = bjob(0, 10.0, 0.0, deadline=10.0, index=1)
        assert pick_edf([a1, a0]) is a0

    def test_empty(self):
        assert pick_edf([]) is None
