"""Tests for the Sec. 5 parameter distributions."""

import numpy as np
import pytest

from repro.workload.distributions import (
    LEVEL_A_PERIODS_MS,
    level_b_period_choices_ms,
    level_c_period_choices_ms,
    uniform_medium,
)


class TestUniformMedium:
    def test_range(self):
        rng = np.random.default_rng(0)
        xs = [uniform_medium(rng) for _ in range(1000)]
        assert all(0.1 <= x <= 0.4 for x in xs)

    def test_spread(self):
        rng = np.random.default_rng(1)
        xs = [uniform_medium(rng) for _ in range(1000)]
        assert np.mean(xs) == pytest.approx(0.25, abs=0.02)


class TestPeriodGrids:
    def test_level_a_grid(self):
        assert tuple(LEVEL_A_PERIODS_MS) == (25, 50, 100)

    def test_level_b_multiples(self):
        assert level_b_period_choices_ms(100) == [100, 200, 300]
        assert level_b_period_choices_ms(50) == [50, 100, 150, 200, 250, 300]

    def test_level_b_cap(self):
        assert max(level_b_period_choices_ms(25)) <= 300

    def test_level_b_bad_period(self):
        with pytest.raises(ValueError):
            level_b_period_choices_ms(0)

    def test_level_c_grid(self):
        grid = level_c_period_choices_ms()
        assert grid[0] == 10 and grid[-1] == 100
        assert all(p % 5 == 0 for p in grid)
        assert len(grid) == 19
