"""Tests for the Sec. 5 task-set generator."""

import pytest

from repro.analysis.schedulability import check_level_c
from repro.core.gel import gfl_relative_pp
from repro.model.task import CriticalityLevel as L
from repro.workload.generator import GeneratorParams, generate_taskset, generate_tasksets


@pytest.fixture(scope="module")
def ts():
    return generate_taskset(seed=42)


class TestBudgets:
    def test_level_shares_met(self, ts):
        """A/B: 5% per level; C: 65% of the system (level-C PWCETs)."""
        m = ts.m
        assert ts.utilization(L.C, level=L.A) == pytest.approx(0.05 * m, abs=1e-3)
        assert ts.utilization(L.C, level=L.B) == pytest.approx(0.05 * m, abs=1e-3)
        assert ts.utilization(L.C, level=L.C) == pytest.approx(0.65 * m, abs=1e-3)

    def test_per_cpu_ab_shares(self, ts):
        for p in range(ts.m):
            assert ts.cpu_ab_utilization(p, L.C) == pytest.approx(0.10, abs=1e-3)

    def test_level_a_full_at_own_level(self, ts):
        """5% at level-C PWCETs x 20 = 100% at level-A PWCETs per CPU."""
        for p in range(ts.m):
            u = sum(t.utilization(L.A) for t in ts.on_cpu(p, L.A))
            assert u == pytest.approx(1.0, abs=0.02)


class TestPwcetRatios:
    def test_ratios_10_and_20(self, ts):
        for t in ts.level(L.A):
            c = t.pwcet(L.C)
            assert t.pwcet(L.B) == pytest.approx(10 * c)
            assert t.pwcet(L.A) == pytest.approx(20 * c)
        for t in ts.level(L.B):
            assert t.pwcet(L.B) == pytest.approx(10 * t.pwcet(L.C))

    def test_level_c_tasks_carry_level_b_pwcets(self, ts):
        """Needed by Sec. 5's overload scenarios (all levels overrun)."""
        for t in ts.level(L.C):
            assert t.pwcet(L.B) == pytest.approx(10 * t.pwcet(L.C))


class TestPeriods:
    def test_level_a_periods_from_grid(self, ts):
        for t in ts.level(L.A):
            assert round(t.period * 1000) in (25, 50, 100)

    def test_level_b_periods_multiples_of_largest_a(self, ts):
        for p in range(ts.m):
            a_periods = [round(t.period * 1000) for t in ts.on_cpu(p, L.A)]
            largest = max(a_periods)
            for t in ts.on_cpu(p, L.B):
                ms = round(t.period * 1000)
                assert ms % largest == 0
                assert ms <= 300

    def test_level_c_periods_grid(self, ts):
        for t in ts.level(L.C):
            ms = round(t.period * 1000)
            assert 10 <= ms <= 100 and ms % 5 == 0


class TestLevelCProperties:
    def test_gfl_pps(self, ts):
        for t in ts.level(L.C):
            assert t.relative_pp == pytest.approx(
                gfl_relative_pp(t.period, t.pwcet(L.C), ts.m)
            )

    def test_tolerances_assigned(self, ts):
        assert all(t.tolerance is not None and t.tolerance > 0 for t in ts.level(L.C))

    def test_schedulable(self, ts):
        assert check_level_c(ts).schedulable

    def test_utilizations_in_uniform_medium_range(self, ts):
        # All but the (scaled-down) last task obey U(0.1, 0.4).
        us = sorted(t.utilization(L.C) for t in ts.level(L.C))
        assert all(u <= 0.4 + 1e-9 for u in us)
        assert sum(1 for u in us if u < 0.1) <= 1


class TestReproducibility:
    def test_same_seed_same_set(self):
        a = generate_taskset(7)
        b = generate_taskset(7)
        assert len(a) == len(b)
        for ta, tb in zip(a, b):
            assert ta.period == tb.period
            assert ta.pwcets == tb.pwcets
            assert ta.cpu == tb.cpu

    def test_different_seeds_differ(self):
        a = generate_taskset(7)
        b = generate_taskset(8)
        assert any(
            ta.period != tb.period or ta.pwcets != tb.pwcets
            for ta, tb in zip(a, b)
        ) or len(a) != len(b)

    def test_generate_tasksets_count_and_seeds(self):
        sets = generate_tasksets(3, base_seed=100)
        assert len(sets) == 3
        ref = generate_taskset(101)
        assert len(sets[1]) == len(ref)


class TestParams:
    def test_without_tolerances(self):
        ts = generate_taskset(1, GeneratorParams(assign_tolerances=False))
        assert all(t.tolerance is None for t in ts.level(L.C))

    def test_custom_m(self):
        ts = generate_taskset(1, GeneratorParams(m=2))
        assert ts.m == 2
        assert ts.utilization(L.C, level=L.C) == pytest.approx(1.3, abs=1e-3)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GeneratorParams(m=0)
        with pytest.raises(ValueError):
            GeneratorParams(level_c_share=1.5)
        with pytest.raises(ValueError):
            GeneratorParams(ratio_a=5.0, ratio_b=10.0)
        with pytest.raises(ValueError):
            GeneratorParams(util_range=(0.0, 0.4))
        with pytest.raises(ValueError):
            GeneratorParams(util_range=(0.5, 0.4))
        with pytest.raises(ValueError):
            GeneratorParams(level_c_util_cap=0.0)

    def test_light_distribution_many_small_tasks(self):
        light = generate_taskset(1, GeneratorParams(util_range=(0.001, 0.1)))
        medium = generate_taskset(1, GeneratorParams())
        assert len(light.level(L.C)) > 2 * len(medium.level(L.C))
        assert all(t.utilization(L.C) <= 0.1 + 1e-9 for t in light.level(L.C))

    def test_heavy_distribution_capped_and_schedulable(self):
        ts = generate_taskset(
            1, GeneratorParams(util_range=(0.5, 0.9), level_c_util_cap=0.85)
        )
        assert all(t.utilization(L.C) <= 0.85 + 1e-9 for t in ts.level(L.C))
        assert check_level_c(ts).schedulable

    def test_util_range_respected_at_own_level(self):
        ts = generate_taskset(4, GeneratorParams(util_range=(0.2, 0.3)))
        # All but the per-budget scaled-down last task per group.
        us = sorted(t.utilization(L.A) for t in ts.level(L.A))
        assert us[-1] <= 0.3 + 1e-9
        assert sum(1 for u in us if u < 0.2 - 1e-9) <= ts.m  # one leftover per CPU

    def test_every_seed_schedulable(self):
        """The paper's 20 task sets: all must admit finite bounds."""
        for ts in generate_tasksets(20, base_seed=2015):
            assert check_level_c(ts).schedulable
