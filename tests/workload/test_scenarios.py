"""Tests for the SHORT/LONG/DOUBLE overload scenarios."""

import pytest

from repro.workload.scenarios import CALM, DOUBLE, LONG, SHORT, standard_scenarios
from tests.conftest import make_a_task, make_c_task


class TestScenarioDefinitions:
    def test_short_is_500ms(self):
        assert SHORT.windows[0].start == 0.0
        assert SHORT.windows[0].end == 0.5
        assert SHORT.last_overload_end == 0.5
        assert SHORT.total_overload_length == 0.5

    def test_long_is_1s(self):
        assert LONG.last_overload_end == 1.0
        assert LONG.total_overload_length == 1.0

    def test_double_structure(self):
        """500 ms overload, 1 s normal, 500 ms overload."""
        w1, w2 = DOUBLE.windows
        assert (w1.start, w1.end) == (0.0, 0.5)
        assert (w2.start, w2.end) == (1.5, 2.0)
        assert DOUBLE.last_overload_end == 2.0
        assert DOUBLE.total_overload_length == 1.0

    def test_standard_order(self):
        assert [s.name for s in standard_scenarios()] == ["SHORT", "LONG", "DOUBLE"]

    def test_calm_has_no_windows(self):
        assert CALM.windows == ()
        assert CALM.last_overload_end == 0.0
        assert CALM.total_overload_length == 0.0
        # Its behaviour runs every job at the normal (level-C) PWCETs.
        b = CALM.behavior()
        a = make_a_task(0, 0.025, 0.001, cpu=0)
        assert b.exec_time(a, 0, 0.0) == pytest.approx(0.001)


class TestScenarioBehavior:
    def test_level_b_pwcets_inside_window(self):
        b = SHORT.behavior()
        a = make_a_task(0, 0.025, 0.001, cpu=0)
        assert b.exec_time(a, 0, 0.0) == pytest.approx(0.010)   # 10x
        assert b.exec_time(a, 20, 0.5) == pytest.approx(0.001)  # back to normal

    def test_level_c_task_has_no_b_pwcet_falls_back(self):
        """Level-C tasks carry only a level-C PWCET; the scenario's
        overload level falls back to it (they are still delayed by the
        inflated A/B interference)."""
        b = SHORT.behavior()
        c = make_c_task(0, 0.02, 0.004)
        assert b.exec_time(c, 0, 0.1) == pytest.approx(0.004)

    def test_double_gap_is_normal(self):
        b = DOUBLE.behavior()
        a = make_a_task(0, 0.025, 0.001, cpu=0)
        assert b.exec_time(a, 0, 1.0) == pytest.approx(0.001)
        assert b.exec_time(a, 0, 1.6) == pytest.approx(0.010)

    def test_shifted(self):
        s = SHORT.shifted(1.0)
        assert s.windows[0].start == 1.0
        assert s.last_overload_end == 1.5
        # The shifted scenario must stay distinguishable from the
        # original in figure labels and scorecard rollups.
        assert s.name == "SHORT+1s"
        assert s.name != SHORT.name
        assert s != SHORT

    def test_shifted_name_carries_fractional_offset(self):
        assert SHORT.shifted(0.25).name == "SHORT+0.25s"

    def test_shifted_by_zero_keeps_name(self):
        assert SHORT.shifted(0.0) == SHORT
