"""Tests for open-system traffic workloads (sources, servers, behavior)."""

import json

import pytest

from repro.core.gel import gfl_relative_pp
from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel as L
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.traffic import (
    TRAFFIC_BASE_ID,
    Arrival,
    DiurnalCurveSource,
    MMPPSource,
    PoissonSource,
    ServerSpec,
    TraceReplaySource,
    TrafficFlow,
    TrafficSpec,
    arrivals_ndjson,
    parse_arrivals_ndjson,
    source_from_dict,
    source_to_dict,
    traffic_from_dict,
    traffic_to_dict,
)

HORIZON = 2.0

SOURCES = [
    PoissonSource(rate=200.0, mean_demand=0.002, seed=5),
    MMPPSource(rates=(50.0, 800.0), dwells=(0.3, 0.08),
               mean_demand=0.002, seed=5),
    DiurnalCurveSource(base_rate=30.0, peak_rate=500.0, period=0.9,
                       mean_demand=0.002, seed=5),
    TraceReplaySource.from_arrivals(
        [Arrival(0.1, 0.003), Arrival(0.4, 0.001), Arrival(1.2, 0.002)]
    ),
]


def _reseed_via_dict(source, seed):
    """The same source spec with only the seed changed."""
    doc = source_to_dict(source)
    doc["seed"] = seed
    return source_from_dict(doc)


class TestDeterminism:
    """Same spec => byte-identical arrival NDJSON; different seed differs."""

    @pytest.mark.parametrize("source", SOURCES, ids=lambda s: type(s).__name__)
    def test_same_spec_byte_identical(self, source):
        a = arrivals_ndjson(source, HORIZON)
        b = arrivals_ndjson(source, HORIZON)
        assert a == b
        # A reconstructed equal spec (fresh object) expands identically too.
        clone = source_from_dict(source_to_dict(source))
        assert arrivals_ndjson(clone, HORIZON) == a

    @pytest.mark.parametrize(
        "source", SOURCES[:3], ids=lambda s: type(s).__name__
    )
    def test_different_seed_different_arrivals(self, source):
        other = _reseed_via_dict(source, source.seed + 1)
        assert arrivals_ndjson(other, HORIZON) != arrivals_ndjson(source, HORIZON)

    @pytest.mark.parametrize("source", SOURCES, ids=lambda s: type(s).__name__)
    def test_arrivals_sorted_and_in_horizon(self, source):
        arr = source.arrivals(HORIZON)
        times = [a.time for a in arr]
        assert times == sorted(times)
        assert all(0.0 <= t < HORIZON for t in times)
        assert all(a.demand >= 0.0 for a in arr)

    def test_ndjson_round_trip(self):
        source = SOURCES[1]
        text = arrivals_ndjson(source, HORIZON)
        back = parse_arrivals_ndjson(text)
        assert back == source.arrivals(HORIZON)
        # Replaying the text reproduces the exact same bytes.
        replay = TraceReplaySource(ndjson=text)
        assert arrivals_ndjson(replay, HORIZON) == text

    def test_demand_fixed_is_constant(self):
        src = PoissonSource(rate=100.0, mean_demand=0.004, demand="fixed", seed=1)
        assert {a.demand for a in src.arrivals(HORIZON)} == {0.004}


class TestSourceValidation:
    def test_poisson_rejects_bad(self):
        with pytest.raises(ValueError):
            PoissonSource(rate=0.0, mean_demand=0.001)
        with pytest.raises(ValueError):
            PoissonSource(rate=1.0, mean_demand=0.001, demand="uniform")

    def test_mmpp_rejects_bad(self):
        with pytest.raises(ValueError):
            MMPPSource(rates=(1.0,), dwells=(1.0,), mean_demand=0.001)
        with pytest.raises(ValueError):
            MMPPSource(rates=(1.0, 2.0), dwells=(1.0,), mean_demand=0.001)
        with pytest.raises(ValueError):
            MMPPSource(rates=(1.0, 2.0), dwells=(1.0, 1.0),
                       mean_demand=0.001, start_state=5)

    def test_diurnal_rejects_peak_below_base(self):
        with pytest.raises(ValueError):
            DiurnalCurveSource(base_rate=10.0, peak_rate=5.0, period=1.0,
                               mean_demand=0.001)

    def test_replay_rejects_bad_lines(self):
        with pytest.raises(ValueError, match="line 1"):
            TraceReplaySource(ndjson="not json\n")
        with pytest.raises(ValueError, match=">= 0"):
            TraceReplaySource(ndjson='{"t":-1.0,"demand":0.1}\n')

    def test_replay_sorts_out_of_order_trace(self):
        src = TraceReplaySource(
            ndjson='{"t":0.5,"demand":0.1}\n{"t":0.1,"demand":0.2}\n'
        )
        assert [a.time for a in src.arrivals(1.0)] == [0.1, 0.5]


class TestAnalysisAxes:
    def test_poisson_offered_load(self):
        src = PoissonSource(rate=100.0, mean_demand=0.002)
        assert src.offered_load(10.0) == pytest.approx(0.2)
        assert src.burst_size() == 0.0
        assert src.last_burst_end(10.0) == 0.0

    def test_mmpp_axes(self):
        src = MMPPSource(rates=(50.0, 800.0), dwells=(0.3, 0.08),
                         mean_demand=0.002, seed=5)
        # Dwell-weighted mean rate.
        expect = (50.0 * 0.3 + 800.0 * 0.08) / 0.38 * 0.002
        assert src.offered_load(10.0) == pytest.approx(expect)
        assert src.burst_size() == pytest.approx((800.0 - 50.0) * 0.08 * 0.002)
        # last_burst_end is the end of a peak dwell segment.
        end = src.last_burst_end(HORIZON)
        assert 0.0 < end <= HORIZON
        segments = src._segments(HORIZON)
        peak_ends = [e for (s, e, r) in segments if r == 800.0]
        assert end == peak_ends[-1]

    def test_diurnal_axes(self):
        src = DiurnalCurveSource(base_rate=30.0, peak_rate=500.0, period=0.9,
                                 mean_demand=0.002, seed=5)
        assert src.offered_load(10.0) == pytest.approx((30 + 500) / 2 * 0.002)
        assert src.burst_size() > 0.0
        # Last above-mean half-period before a 2 s horizon: the curve is
        # above its mean while the phase fraction is in [1/4, 3/4); with
        # period 0.9 the relevant window is [1.125, 1.575).
        assert src.last_burst_end(2.0) == pytest.approx(1.575)
        # A horizon inside the window truncates to it.
        assert src.last_burst_end(1.3) == pytest.approx(1.3)

    def test_replay_burst_is_last_arrival(self):
        src = SOURCES[3]
        assert src.last_burst_end(HORIZON) == pytest.approx(1.2)
        assert src.last_burst_end(1.0) == pytest.approx(0.4)


class TestServerSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerSpec(period=0.01, budget=0.02)  # budget > period
        with pytest.raises(ValueError):
            ServerSpec(level="A")
        with pytest.raises(ValueError):
            ServerSpec(policy="sporadic")
        with pytest.raises(ValueError):
            ServerSpec(count=0)

    def test_utilization(self):
        srv = ServerSpec(period=0.02, budget=0.004, count=3)
        assert srv.utilization == pytest.approx(0.6)


class TestTrafficSpecExpansion:
    def make_spec(self):
        return TrafficSpec(flows=(
            TrafficFlow(
                PoissonSource(rate=100.0, mean_demand=0.002, seed=1),
                ServerSpec(period=0.02, budget=0.004, count=2),
            ),
            TrafficFlow(
                PoissonSource(rate=50.0, mean_demand=0.001, seed=2),
                ServerSpec(period=0.05, budget=0.002, level="D"),
            ),
        ))

    def test_needs_flows(self):
        with pytest.raises(ValueError):
            TrafficSpec(flows=())

    def test_server_tasks_ids_and_levels(self):
        tasks = self.make_spec().server_tasks(m=4)
        assert [t.task_id for t in tasks] == [
            TRAFFIC_BASE_ID, TRAFFIC_BASE_ID + 1, TRAFFIC_BASE_ID + 2
        ]
        assert [t.level for t in tasks] == [L.C, L.C, L.D]
        assert [t.name for t in tasks] == ["srv0.0", "srv0.1", "srv1.0"]
        c0 = tasks[0]
        assert c0.period == 0.02
        assert c0.pwcets[L.C] == 0.004
        assert c0.tolerance == 0.02  # defaults to the period
        assert c0.relative_pp == pytest.approx(
            gfl_relative_pp(0.02, 0.004, 4)
        )
        d0 = tasks[2]
        assert d0.pwcets[L.D] == 0.002

    def test_tolerance_override(self):
        spec = TrafficSpec(flows=(
            TrafficFlow(
                PoissonSource(rate=10.0, mean_demand=0.001),
                ServerSpec(period=0.02, budget=0.004, tolerance=0.1),
            ),
        ))
        assert spec.server_tasks(2)[0].tolerance == 0.1

    def test_augment_keeps_base_tasks(self):
        ts = generate_taskset(2015, GeneratorParams(m=2))
        spec = self.make_spec()
        aug = spec.augment(ts)
        assert len(aug) == len(ts) + 3
        assert aug.m == ts.m
        base_ids = {t.task_id for t in ts}
        assert base_ids < {t.task_id for t in aug}

    def test_spec_axes_aggregate_flows(self):
        spec = self.make_spec()
        assert spec.offered_load(10.0) == pytest.approx(
            100 * 0.002 + 50 * 0.001
        )
        assert spec.service_utilization() == pytest.approx(
            2 * 0.004 / 0.02 + 0.002 / 0.05
        )
        assert spec.burst_size() == 0.0
        assert spec.last_burst_end(10.0) == 0.0


class TestCanonicalJson:
    def test_round_trip_all_source_kinds(self):
        for source in SOURCES:
            spec = TrafficSpec(flows=(
                TrafficFlow(source, ServerSpec(period=0.03, budget=0.006,
                                               policy="deferrable", count=2)),
            ))
            back = traffic_from_dict(traffic_to_dict(spec))
            assert back == spec
            assert back.canonical_json() == spec.canonical_json()

    def test_canonical_text_sorted_no_spaces(self):
        spec = TrafficSpec(flows=(
            TrafficFlow(PoissonSource(rate=10.0, mean_demand=0.001)),
        ))
        text = spec.canonical_json()
        assert ": " not in text and ", " not in text
        doc = json.loads(text)
        assert doc == traffic_to_dict(spec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            source_from_dict({"kind": "fractal"})

    def test_unknown_source_type_rejected(self):
        with pytest.raises(TypeError):
            TrafficFlow(source=object())


class TestServerGrants:
    """_ServerQueue semantics through the public behavior wrapper."""

    def behavior_for(self, spec, horizon=1.0):
        inner = ConstantBehavior(L.C)
        return spec.build_behavior(inner, horizon), spec.server_tasks(m=2)

    def test_polling_grants_backlog_capped_at_budget(self):
        trace = TraceReplaySource.from_arrivals(
            [Arrival(0.000, 0.003), Arrival(0.001, 0.003), Arrival(0.5, 0.001)]
        )
        spec = TrafficSpec(flows=(
            TrafficFlow(trace, ServerSpec(period=0.1, budget=0.004)),
        ))
        beh, (srv,) = self.behavior_for(spec)
        # Release 0.1: 0.006 arrived, capped at budget 0.004.
        assert beh.exec_time(srv, 1, 0.1) == pytest.approx(0.004)
        # Release 0.2: the remaining 0.002 backlog drains.
        assert beh.exec_time(srv, 2, 0.2) == pytest.approx(0.002)
        # Release 0.3/0.4: idle.
        assert beh.exec_time(srv, 3, 0.3) == 0.0
        # Release 0.6: the late arrival.
        assert beh.exec_time(srv, 6, 0.6) == pytest.approx(0.001)

    def test_grants_conserve_total_demand(self):
        src = PoissonSource(rate=300.0, mean_demand=0.002, seed=9)
        spec = TrafficSpec(flows=(
            TrafficFlow(src, ServerSpec(period=0.02, budget=0.01, count=2)),
        ))
        horizon = 2.0
        beh, tasks = self.behavior_for(spec, horizon)
        total = 0.0
        for srv in tasks:
            k = 0
            while k * srv.period < horizon + 1.0:  # drain past the horizon
                total += beh.exec_time(srv, k, k * srv.period)
                k += 1
        offered = sum(a.demand for a in src.arrivals(horizon))
        assert total == pytest.approx(offered)

    def test_polling_ignores_future_arrivals_deferrable_admits(self):
        trace = TraceReplaySource.from_arrivals([Arrival(0.105, 0.002)])
        for policy, expect in (("polling", 0.0), ("deferrable", 0.002)):
            spec = TrafficSpec(flows=(
                TrafficFlow(trace, ServerSpec(period=0.1, budget=0.004,
                                              policy=policy)),
            ))
            beh, (srv,) = self.behavior_for(spec)
            # Release at 0.1: the arrival at 0.105 is within one period
            # of lookahead for the deferrable server only.
            assert beh.exec_time(srv, 1, 0.1) == pytest.approx(expect)

    def test_grant_memoized_per_job_index(self):
        trace = TraceReplaySource.from_arrivals([Arrival(0.0, 0.002)])
        spec = TrafficSpec(flows=(
            TrafficFlow(trace, ServerSpec(period=0.1, budget=0.004)),
        ))
        beh, (srv,) = self.behavior_for(spec)
        first = beh.exec_time(srv, 1, 0.1)
        assert first == pytest.approx(0.002)
        # Re-sampling the same job returns the memo, not a fresh grant.
        assert beh.exec_time(srv, 1, 0.1) == first
        assert beh.exec_time(srv, 2, 0.2) == 0.0

    def test_round_robin_partition(self):
        trace = TraceReplaySource.from_arrivals(
            [Arrival(0.01 * i, 0.001) for i in range(4)]
        )
        spec = TrafficSpec(flows=(
            TrafficFlow(trace, ServerSpec(period=0.1, budget=0.01, count=2)),
        ))
        beh, (s0, s1) = self.behavior_for(spec)
        # Arrivals 0,2 go to server 0; arrivals 1,3 to server 1.
        assert beh.exec_time(s0, 1, 0.1) == pytest.approx(0.002)
        assert beh.exec_time(s1, 1, 0.1) == pytest.approx(0.002)

    def test_non_server_tasks_delegate_to_inner(self):
        ts = generate_taskset(2015, GeneratorParams(m=2))
        spec = TrafficSpec(flows=(
            TrafficFlow(PoissonSource(rate=10.0, mean_demand=0.001)),
        ))
        inner = ConstantBehavior(L.C)
        beh = spec.build_behavior(inner, 1.0)
        for task in ts:
            assert beh.exec_time(task, 0, 0.0) == inner.exec_time(task, 0, 0.0)
