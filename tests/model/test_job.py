"""Tests for repro.model.job."""

import pytest

from repro.model.job import Job
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task


def c_task(tolerance=3.0):
    return Task(task_id=1, level=L.C, period=4.0, pwcets={L.C: 2.0},
                relative_pp=3.0, tolerance=tolerance)


class TestJobBasics:
    def test_remaining_initialized_to_exec_time(self):
        j = Job(task=c_task(), index=0, release=0.0, exec_time=2.0)
        assert j.remaining == 2.0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            Job(task=c_task(), index=-1, release=0.0, exec_time=1.0)

    def test_negative_exec_rejected(self):
        with pytest.raises(ValueError, match="exec_time"):
            Job(task=c_task(), index=0, release=0.0, exec_time=-0.1)

    def test_jid_and_label(self):
        j = Job(task=c_task(), index=6, release=36.0, exec_time=3.0)
        assert j.jid == (1, 6)
        assert j.label == "tau1,6"


class TestPendingDefinition:
    """Sec. 2: pending at t iff r <= t < t^c."""

    def test_not_pending_before_release(self):
        j = Job(task=c_task(), index=0, release=5.0, exec_time=1.0)
        assert not j.is_pending(4.999)
        assert j.is_pending(5.0)

    def test_pending_until_completion_exclusive(self):
        j = Job(task=c_task(), index=0, release=0.0, exec_time=1.0)
        j.completion = 3.0
        assert j.is_pending(2.999)
        assert not j.is_pending(3.0)

    def test_incomplete_job_pending_forever(self):
        j = Job(task=c_task(), index=0, release=0.0, exec_time=1.0)
        assert j.is_pending(1e9)


class TestResponseAndLateness:
    def test_response_time(self):
        j = Job(task=c_task(), index=0, release=36.0, exec_time=3.0)
        assert j.response_time is None
        j.completion = 43.0
        assert j.response_time == 7.0

    def test_pp_lateness_requires_resolved_pp(self):
        j = Job(task=c_task(), index=0, release=0.0, exec_time=1.0)
        j.completion = 5.0
        assert j.pp_lateness is None  # completed before PP (Fig. 5(b))
        j.actual_pp = 3.0
        assert j.pp_lateness == 2.0


class TestMeetsTolerance:
    def test_unresolved_pp_always_meets(self):
        """Fig. 5(b): t^c <= y means the tolerance is met by definition."""
        j = Job(task=c_task(tolerance=0.0), index=0, release=0.0, exec_time=1.0)
        j.completion = 2.0
        assert j.meets_tolerance()

    def test_within_tolerance(self):
        j = Job(task=c_task(tolerance=3.0), index=0, release=0.0, exec_time=1.0)
        j.actual_pp = 3.0
        j.completion = 6.0  # exactly y + xi: "barely within its tolerance"
        assert j.meets_tolerance()

    def test_miss(self):
        j = Job(task=c_task(tolerance=3.0), index=0, release=0.0, exec_time=1.0)
        j.actual_pp = 3.0
        j.completion = 6.0001
        assert not j.meets_tolerance()

    def test_incomplete_rejected(self):
        j = Job(task=c_task(), index=0, release=0.0, exec_time=1.0)
        with pytest.raises(ValueError, match="not complete"):
            j.meets_tolerance()

    def test_no_tolerance_configured_rejected(self):
        j = Job(task=c_task(tolerance=None), index=0, release=0.0, exec_time=1.0)
        j.completion = 1.0
        with pytest.raises(ValueError, match="tolerance"):
            j.meets_tolerance()

    def test_non_c_job_rejected(self):
        a = Task(task_id=0, level=L.A, period=10.0, pwcets={L.A: 1.0}, cpu=0)
        j = Job(task=a, index=0, release=0.0, exec_time=1.0)
        j.completion = 1.0
        with pytest.raises(ValueError, match="level-C"):
            j.meets_tolerance()
