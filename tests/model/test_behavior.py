"""Tests for execution behaviours (repro.model.behavior)."""

import pytest

from repro.model.behavior import (
    ConstantBehavior,
    OverloadWindow,
    PwcetFractionBehavior,
    StochasticBehavior,
    TraceBehavior,
    WindowedOverloadBehavior,
)
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task


def a_task():
    return Task(task_id=0, level=L.A, period=10.0,
                pwcets={L.A: 4.0, L.B: 2.0, L.C: 0.2}, cpu=0)


def c_task():
    return Task(task_id=1, level=L.C, period=4.0, pwcets={L.C: 1.0}, relative_pp=3.0)


def d_task():
    return Task(task_id=2, level=L.D, period=1.0)


class TestConstantBehavior:
    def test_default_is_level_c_pwcet(self):
        assert ConstantBehavior().exec_time(a_task(), 0, 0.0) == 0.2
        assert ConstantBehavior().exec_time(c_task(), 0, 0.0) == 1.0

    def test_other_level(self):
        assert ConstantBehavior(L.A).exec_time(a_task(), 0, 0.0) == 4.0

    def test_missing_level_falls_back_to_least_pessimistic(self):
        """A level-C task has no level-B PWCET; use its level-C one."""
        assert ConstantBehavior(L.B).exec_time(c_task(), 0, 0.0) == 1.0

    def test_level_d_task_without_pwcets_is_zero(self):
        assert ConstantBehavior().exec_time(d_task(), 0, 0.0) == 0.0


class TestPwcetFraction:
    def test_fraction(self):
        assert PwcetFractionBehavior(0.5).exec_time(c_task(), 0, 0.0) == 0.5

    def test_overrun_fraction(self):
        assert PwcetFractionBehavior(1.5).exec_time(c_task(), 0, 0.0) == 1.5

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            PwcetFractionBehavior(0.0)


class TestTraceBehavior:
    def test_overrides_and_default(self):
        b = TraceBehavior({(1, 3): 9.0})
        assert b.exec_time(c_task(), 3, 0.0) == 9.0
        assert b.exec_time(c_task(), 2, 0.0) == 1.0

    def test_negative_override_rejected(self):
        with pytest.raises(ValueError):
            TraceBehavior({(1, 0): -1.0})

    def test_custom_default(self):
        b = TraceBehavior({}, default=ConstantBehavior(L.A))
        assert b.exec_time(a_task(), 0, 0.0) == 4.0


class TestOverloadWindow:
    def test_contains_half_open(self):
        w = OverloadWindow(1.0, 2.0)
        assert not w.contains(0.999)
        assert w.contains(1.0)
        assert w.contains(1.999)
        assert not w.contains(2.0)

    def test_length(self):
        assert OverloadWindow(0.5, 2.0).length == 1.5

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            OverloadWindow(1.0, 1.0)


class TestWindowedOverloadBehavior:
    def test_short_scenario_semantics(self):
        """Jobs released inside the window run level-B PWCETs (10x)."""
        b = WindowedOverloadBehavior([OverloadWindow(0.0, 0.5)])
        assert b.exec_time(a_task(), 0, 0.0) == 2.0   # level-B PWCET
        assert b.exec_time(a_task(), 1, 0.5) == 0.2   # back to level C
        assert b.exec_time(c_task(), 0, 0.25) == 1.0  # no level-B PWCET: fallback

    def test_double_scenario_two_windows(self):
        b = WindowedOverloadBehavior(
            [OverloadWindow(0.0, 0.5), OverloadWindow(1.5, 2.0)]
        )
        assert b.in_overload(0.2)
        assert not b.in_overload(1.0)
        assert b.in_overload(1.7)
        assert b.last_overload_end == 2.0

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            WindowedOverloadBehavior(
                [OverloadWindow(0.0, 1.0), OverloadWindow(0.5, 2.0)]
            )

    def test_windows_sorted_internally(self):
        b = WindowedOverloadBehavior(
            [OverloadWindow(1.5, 2.0), OverloadWindow(0.0, 0.5)]
        )
        assert b.windows[0].start == 0.0

    def test_no_windows_means_never_overloaded(self):
        b = WindowedOverloadBehavior([])
        assert not b.in_overload(0.0)
        assert b.last_overload_end == 0.0


class TestStochasticBehavior:
    def test_within_bounds_without_overruns(self):
        b = StochasticBehavior(lo=0.5, hi=0.9, seed=1)
        for k in range(200):
            e = b.exec_time(c_task(), k, 0.0)
            assert 0.5 <= e <= 0.9

    def test_deterministic_given_seed(self):
        b1 = StochasticBehavior(seed=7)
        b2 = StochasticBehavior(seed=7)
        xs1 = [b1.exec_time(c_task(), k, 0.0) for k in range(20)]
        xs2 = [b2.exec_time(c_task(), k, 0.0) for k in range(20)]
        assert xs1 == xs2

    def test_overruns_occur_with_probability(self):
        b = StochasticBehavior(lo=0.5, hi=1.0, overrun_prob=0.5,
                               overrun_factor=3.0, seed=3)
        es = [b.exec_time(c_task(), k, 0.0) for k in range(500)]
        overruns = [e for e in es if e > 1.0]
        assert 150 < len(overruns) < 350  # ~50%
        assert max(es) <= 3.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StochasticBehavior(lo=0.0)
        with pytest.raises(ValueError):
            StochasticBehavior(overrun_prob=1.5)
        with pytest.raises(ValueError):
            StochasticBehavior(overrun_factor=0.5)
