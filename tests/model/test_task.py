"""Tests for the MC² task model (repro.model.task)."""

import pytest

from repro.model.task import CriticalityLevel as L
from repro.model.task import Task


class TestCriticalityLevel:
    def test_ordering_a_is_most_critical(self):
        assert L.A < L.B < L.C < L.D

    def test_at_or_above(self):
        assert L.A.at_or_above(L.C)
        assert L.C.at_or_above(L.C)
        assert not L.D.at_or_above(L.C)

    def test_hard_levels(self):
        assert L.A.is_hard and L.B.is_hard
        assert not L.C.is_hard and not L.D.is_hard


class TestTaskConstruction:
    def test_level_c_requires_relative_pp(self):
        with pytest.raises(ValueError, match="relative_pp"):
            Task(task_id=0, level=L.C, period=4.0, pwcets={L.C: 1.0})

    def test_level_c_valid(self):
        t = Task(task_id=0, level=L.C, period=4.0, pwcets={L.C: 1.0}, relative_pp=3.0)
        assert t.utilization(L.C) == pytest.approx(0.25)

    def test_level_c_cannot_be_pinned(self):
        with pytest.raises(ValueError, match="globally"):
            Task(task_id=0, level=L.C, period=4.0, pwcets={L.C: 1.0},
                 relative_pp=3.0, cpu=0)

    def test_level_a_requires_cpu(self):
        with pytest.raises(ValueError, match="pinned"):
            Task(task_id=0, level=L.A, period=10.0, pwcets={L.A: 1.0})

    def test_level_a_requires_own_pwcet(self):
        with pytest.raises(ValueError, match="missing PWCET"):
            Task(task_id=0, level=L.A, period=10.0, pwcets={L.C: 1.0}, cpu=0)

    def test_pwcet_above_own_criticality_allowed(self):
        """Sec. 5: level-C tasks carry level-B PWCETs (10x) for the
        overload scenarios; analysis at level B simply ignores them."""
        t = Task(task_id=0, level=L.C, period=4.0,
                 pwcets={L.C: 1.0, L.B: 10.0}, relative_pp=3.0)
        assert t.pwcet(L.B) == 10.0

    def test_non_c_task_cannot_have_pp_or_tolerance(self):
        with pytest.raises(ValueError, match="Y_i"):
            Task(task_id=0, level=L.A, period=10.0, pwcets={L.A: 1.0},
                 cpu=0, relative_pp=1.0)
        with pytest.raises(ValueError, match="tolerance"):
            Task(task_id=0, level=L.A, period=10.0, pwcets={L.A: 1.0},
                 cpu=0, tolerance=1.0)

    @pytest.mark.parametrize("period", [0.0, -1.0])
    def test_bad_period(self, period):
        with pytest.raises(ValueError, match="period"):
            Task(task_id=0, level=L.D, period=period)

    def test_negative_task_id(self):
        with pytest.raises(ValueError, match="task_id"):
            Task(task_id=-1, level=L.D, period=1.0)

    def test_level_d_needs_no_pwcets(self):
        t = Task(task_id=0, level=L.D, period=1.0)
        assert t.pwcets == {}

    def test_zero_pwcet_rejected(self):
        with pytest.raises(ValueError, match="pwcet"):
            Task(task_id=0, level=L.C, period=4.0, pwcets={L.C: 0.0}, relative_pp=1.0)


class TestTaskDerived:
    def test_pwcet_lookup_by_level(self):
        t = Task(task_id=0, level=L.A, period=10.0,
                 pwcets={L.A: 4.0, L.B: 2.0, L.C: 0.2}, cpu=1)
        assert t.pwcet(L.A) == 4.0
        assert t.pwcet(L.C) == 0.2
        assert t.utilization(L.A) == pytest.approx(0.4)
        assert t.utilization(L.C) == pytest.approx(0.02)

    def test_pwcet_missing_level_raises(self):
        t = Task(task_id=0, level=L.B, period=10.0, pwcets={L.B: 2.0}, cpu=0)
        with pytest.raises(KeyError):
            t.pwcet(L.C)

    def test_label_defaults_to_tau(self):
        t = Task(task_id=7, level=L.D, period=1.0)
        assert t.label == "tau7"
        named = Task(task_id=7, level=L.D, period=1.0, name="nav")
        assert named.label == "nav"

    def test_with_tolerance_copies(self):
        t = Task(task_id=0, level=L.C, period=4.0, pwcets={L.C: 1.0}, relative_pp=3.0)
        t2 = t.with_tolerance(2.5)
        assert t2.tolerance == 2.5
        assert t.tolerance is None
        assert t2.period == t.period and t2.relative_pp == t.relative_pp

    def test_with_tolerance_on_level_a_rejected(self):
        t = Task(task_id=0, level=L.A, period=10.0, pwcets={L.A: 1.0}, cpu=0)
        with pytest.raises(ValueError):
            t.with_tolerance(1.0)

    def test_with_relative_pp_copies(self):
        t = Task(task_id=0, level=L.C, period=4.0, pwcets={L.C: 1.0},
                 relative_pp=3.0, tolerance=1.0)
        t2 = t.with_relative_pp(2.0)
        assert t2.relative_pp == 2.0
        assert t2.tolerance == 1.0

    def test_pwcets_mapping_is_copied(self):
        src = {L.C: 1.0}
        t = Task(task_id=0, level=L.C, period=4.0, pwcets=src, relative_pp=3.0)
        src[L.C] = 99.0
        assert t.pwcet(L.C) == 1.0
