"""Tests for repro.model.taskset."""

import pytest

from repro.model.task import CriticalityLevel as L
from repro.model.taskset import TaskSet, hyperperiod
from tests.conftest import make_a_task, make_b_task, make_c_task


class TestHyperperiod:
    def test_paper_level_a_grid(self):
        ts = [
            make_a_task(0, 0.025, 0.001, cpu=0),
            make_a_task(1, 0.050, 0.001, cpu=0),
            make_a_task(2, 0.100, 0.001, cpu=0),
        ]
        assert hyperperiod(ts) == pytest.approx(0.1)

    def test_coprime_periods(self):
        ts = [make_c_task(0, 0.004, 0.001), make_c_task(1, 0.006, 0.001)]
        assert hyperperiod(ts) == pytest.approx(0.012)

    def test_empty(self):
        assert hyperperiod([]) == 0.0


class TestTaskSetConstruction:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskSet([make_c_task(0, 4.0, 1.0), make_c_task(0, 5.0, 1.0)], m=2)

    def test_cpu_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="cpu"):
            TaskSet([make_a_task(0, 10.0, 0.5, cpu=2)], m=2)

    def test_m_must_be_positive(self):
        with pytest.raises(ValueError, match="m"):
            TaskSet([], m=0)

    def test_lookup_and_iteration(self):
        t0, t1 = make_c_task(0, 4.0, 1.0), make_c_task(5, 5.0, 1.0)
        ts = TaskSet([t1, t0], m=1)
        assert ts[0].task_id == 0
        assert 5 in ts and 3 not in ts
        assert [t.task_id for t in ts] == [0, 5]  # ordered by id
        assert len(ts) == 2


class TestViews:
    def make_mixed(self):
        return TaskSet(
            [
                make_a_task(0, 10.0, 0.5, cpu=0),
                make_a_task(1, 10.0, 0.5, cpu=1),
                make_b_task(2, 20.0, 0.5, cpu=0),
                make_c_task(3, 4.0, 1.0),
            ],
            m=2,
        )

    def test_level_view(self):
        ts = self.make_mixed()
        assert [t.task_id for t in ts.level(L.A)] == [0, 1]
        assert [t.task_id for t in ts.level(L.C)] == [3]

    def test_at_or_above(self):
        ts = self.make_mixed()
        assert [t.task_id for t in ts.at_or_above(L.B)] == [0, 1, 2]
        assert len(ts.at_or_above(L.C)) == 4

    def test_on_cpu(self):
        ts = self.make_mixed()
        assert [t.task_id for t in ts.on_cpu(0)] == [0, 2]
        assert [t.task_id for t in ts.on_cpu(0, L.B)] == [2]


class TestUtilization:
    def test_total_level_c_utilization_includes_ab(self):
        ts = TaskSet(
            [make_a_task(0, 10.0, 0.5, cpu=0), make_c_task(1, 4.0, 1.0)], m=1
        )
        # A contributes 0.05, C contributes 0.25.
        assert ts.utilization(L.C) == pytest.approx(0.30)

    def test_utilization_filtered_by_level(self):
        ts = TaskSet(
            [make_a_task(0, 10.0, 0.5, cpu=0), make_c_task(1, 4.0, 1.0)], m=1
        )
        assert ts.utilization(L.C, level=L.C) == pytest.approx(0.25)
        assert ts.utilization(L.C, level=L.A) == pytest.approx(0.05)

    def test_cpu_ab_utilization(self):
        ts = TaskSet(
            [
                make_a_task(0, 10.0, 0.5, cpu=0),
                make_b_task(1, 10.0, 0.5, cpu=0),
                make_c_task(2, 4.0, 1.0),
            ],
            m=2,
        )
        assert ts.cpu_ab_utilization(0, L.C) == pytest.approx(0.10)
        assert ts.cpu_ab_utilization(1, L.C) == 0.0

    def test_level_c_supply(self):
        ts = TaskSet(
            [make_a_task(0, 10.0, 1.0, cpu=0), make_c_task(1, 4.0, 1.0)], m=2
        )
        assert ts.level_c_supply() == pytest.approx([0.9, 1.0])


class TestValidatePartitioning:
    def test_valid_set_passes(self, mixed_taskset):
        mixed_taskset.validate_partitioning()

    def test_overcommitted_cpu_at_level_a(self):
        # Level-A utilization at level A: 20x level-C pwcet => u_A = 20 * 0.6/10 = 1.2.
        ts = TaskSet([make_a_task(0, 10.0, 0.6, cpu=0)], m=1)
        with pytest.raises(ValueError, match="over-committed"):
            ts.validate_partitioning()

    def test_overcommitted_level_c_total(self):
        tasks = [make_c_task(i, 1.0, 0.9) for i in range(3)]
        ts = TaskSet(tasks, m=2)
        with pytest.raises(ValueError, match="platform capacity"):
            ts.validate_partitioning()
