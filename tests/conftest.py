"""Shared fixtures: small canonical task sets and helper builders."""

from __future__ import annotations

import pytest

from repro.core.tolerance import fixed_tolerances
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet


def make_c_task(
    task_id: int,
    period: float,
    pwcet: float,
    y: float | None = None,
    tolerance: float | None = None,
    phase: float = 0.0,
    name: str = "",
) -> Task:
    """A level-C task with sensible defaults (Y defaults to the period, G-EDF)."""
    return Task(
        task_id=task_id,
        level=L.C,
        period=period,
        pwcets={L.C: pwcet},
        relative_pp=period if y is None else y,
        tolerance=tolerance,
        phase=phase,
        name=name,
    )


def make_a_task(
    task_id: int,
    period: float,
    pwcet_c: float,
    cpu: int,
    ratio_a: float = 20.0,
    ratio_b: float = 10.0,
) -> Task:
    """A level-A task with the paper's PWCET ratios."""
    return Task(
        task_id=task_id,
        level=L.A,
        period=period,
        pwcets={L.A: ratio_a * pwcet_c, L.B: ratio_b * pwcet_c, L.C: pwcet_c},
        cpu=cpu,
    )


def make_b_task(
    task_id: int, period: float, pwcet_c: float, cpu: int, ratio_b: float = 10.0
) -> Task:
    """A level-B task with the paper's PWCET ratio."""
    return Task(
        task_id=task_id,
        level=L.B,
        period=period,
        pwcets={L.B: ratio_b * pwcet_c, L.C: pwcet_c},
        cpu=cpu,
    )


@pytest.fixture
def tiny_c_taskset() -> TaskSet:
    """Two CPUs, three level-C tasks, comfortable slack, tolerance 5."""
    ts = TaskSet(
        [
            make_c_task(0, period=4.0, pwcet=1.0, y=3.0, name="t0"),
            make_c_task(1, period=5.0, pwcet=2.0, y=4.0, name="t1"),
            make_c_task(2, period=10.0, pwcet=3.0, y=8.0, name="t2"),
        ],
        m=2,
    )
    return fixed_tolerances(ts, 5.0)


@pytest.fixture
def mixed_taskset() -> TaskSet:
    """Two CPUs with A, B and C tasks (moderate utilization), tolerance 6."""
    ts = TaskSet(
        [
            make_a_task(10, period=10.0, pwcet_c=0.5, cpu=0),
            make_a_task(11, period=20.0, pwcet_c=0.5, cpu=1),
            make_b_task(20, period=20.0, pwcet_c=0.5, cpu=0),
            make_c_task(0, period=4.0, pwcet=1.0, y=3.0),
            make_c_task(1, period=8.0, pwcet=2.0, y=6.0),
        ],
        m=2,
    )
    return fixed_tolerances(ts, 6.0)
