"""Unit tests: ``repro-serve`` v1 framing, addresses, and handshakes.

The hypothesis suite (``tests/property/test_serve_protocol_props.py``)
sweeps the message space; these tests pin concrete frames and the edge
cases a fuzzer is unlikely to phrase — canonical byte layout, the lazy
``LineDecoder.feed`` contract, address parsing, port-file polling, and
the coordinator's version gate.
"""

import json
import threading

import pytest

from repro.serve import protocol as wire
from repro.serve.coordinator import Coordinator
from repro.serve.protocol import (
    LineDecoder,
    ProtocolError,
    decode_message,
    encode_message,
    read_port_file,
    split_host_port,
)


class TestFraming:
    def test_frames_are_canonical_sorted_json(self):
        frame = encode_message(wire.Heartbeat(owner="w1", campaign="c", shard="s"))
        line = frame.decode("utf-8")
        assert line.endswith("\n")
        doc = json.loads(line)
        assert doc == {"type": "heartbeat", "owner": "w1", "campaign": "c", "shard": "s"}
        # Canonical: keys sorted, no whitespace — byte-stable across runs.
        assert line.strip() == json.dumps(doc, sort_keys=True, separators=(",", ":"))

    def test_round_trip_with_nested_payload(self):
        msg = wire.CellResult(
            campaign="k" * 64, shard="s" * 64, pos=3,
            doc={"scenario": "short", "nested": {"a": [1, 2.5, "x"]}},
            cached=True, wall_ns=12345,
        )
        assert decode_message(encode_message(msg)[:-1].decode("utf-8")) == msg

    def test_unknown_fields_dropped(self):
        decoded = decode_message('{"type": "cell_ok", "future_field": 1}')
        assert decoded == wire.CellOk()

    def test_unknown_type_and_bad_json_raise(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_message('{"type": "warp_core"}')
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_message("{nope")
        with pytest.raises(ProtocolError, match="not a JSON object"):
            decode_message("[]")


class TestLineDecoder:
    def test_torn_frame_across_three_reads(self):
        frame = encode_message(wire.SubmitOk(key="k", shards=4, shards_done=1))
        decoder = LineDecoder()
        assert list(decoder.feed(frame[:5])) == []
        assert decoder.pending == 5
        assert list(decoder.feed(frame[5:-1])) == []
        out = list(decoder.feed(frame[-1:]))
        assert out == [wire.SubmitOk(key="k", shards=4, shards_done=1)]
        assert decoder.pending == 0

    def test_two_frames_in_one_read(self):
        data = encode_message(wire.CellOk()) + encode_message(wire.TelemetryOk())
        out = list(LineDecoder().feed(data))
        assert [m.TYPE for m in out] == ["cell_ok", "telemetry_ok"]

    def test_abandoned_generator_keeps_remaining_frames_buffered(self):
        # feed() is lazy: taking one message and dropping the iterator
        # must leave the rest intact for a later feed(b"") drain.
        data = encode_message(wire.CellOk()) + encode_message(wire.HeartbeatOk())
        decoder = LineDecoder()
        first = next(decoder.feed(data))
        assert first == wire.CellOk()
        rest = list(decoder.feed(b""))
        assert rest == [wire.HeartbeatOk()]
        assert decoder.pending == 0


class TestAddresses:
    def test_host_port(self):
        assert split_host_port("example.com:7777") == ("example.com", 7777)

    def test_bare_port_gets_default_host(self):
        assert split_host_port("7777") == ("127.0.0.1", 7777)
        assert split_host_port(":7777", default_host="0.0.0.0") == ("0.0.0.0", 7777)

    def test_ipv6_brackets(self):
        assert split_host_port("[::1]:7777") == ("::1", 7777)

    def test_bad_port_raises(self):
        with pytest.raises(ValueError, match="bad service address"):
            split_host_port("host:notaport")


class TestPortFile:
    def test_reads_port_once_written(self, tmp_path):
        path = tmp_path / "port"

        def write_later():
            path.write_text("4242\n")

        t = threading.Timer(0.1, write_later)
        t.start()
        try:
            assert read_port_file(str(path), timeout=5.0) == 4242
        finally:
            t.cancel()

    def test_times_out_when_never_written(self, tmp_path):
        with pytest.raises(TimeoutError, match="no port appeared"):
            read_port_file(str(tmp_path / "never"), timeout=0.2)


class TestHandshake:
    def test_version_mismatch_rejected(self, tmp_path):
        coord = Coordinator(tmp_path)
        (ok,) = coord.handle(wire.Hello(role="worker", owner="w"))
        assert ok == wire.HelloOk()
        (err,) = coord.handle(wire.Hello(role="worker", owner="w", version=99))
        assert isinstance(err, wire.ErrorReply)
        assert "protocol mismatch" in err.reason
        (err,) = coord.handle(wire.Hello(role="client", format="other-proto"))
        assert isinstance(err, wire.ErrorReply)
