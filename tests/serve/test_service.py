"""End-to-end tests for the coordinator/worker campaign fabric.

Pins the service's durability contract against the file queue it wraps:

* merged artifacts from service-run campaigns are **byte-identical** to
  the file queue's ``work()`` on the same campaign (sweep and faults);
* a worker SIGKILLed mid-campaign loses nothing: a survivor steals the
  expired lease and the merged bytes still match;
* a coordinator "crash" after cells streamed but before ``shard_done``
  recovers the buffered shard from its journal on restart;
* lease/heartbeat semantics (grant exclusivity, expiry, wrong-owner
  rejection) under a controllable monotonic clock;
* duplicate/partial deliveries are idempotent or rejected with a reason;
* :func:`~repro.runtime.executor.make_executor` routes
  ``service_addr=`` to :class:`~repro.serve.client.ServiceBackend`,
  which matches :class:`~repro.runtime.executor.SerialBackend`;
* worker telemetry relayed over the wire lands in the campaign
  directory exactly where file-based workers write it;
* ``repro-mc2 status --service`` reports ``source: service``.
"""

import asyncio
import contextlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.cli import main
from repro.faults.campaign import CampaignConfig, build_campaign
from repro.io.results_json import run_result_from_dict, run_result_to_dict
from repro.obs.telemetry import telemetry_path, worker_statuses
from repro.runtime.executor import SerialBackend, make_executor
from repro.runtime.shard import (
    ShardedCampaign,
    prepare_campaign,
    work,
    write_merged_results,
    write_merged_scorecard,
)
from repro.runtime.spec import MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.serve import protocol as wire
from repro.serve.client import ServiceBackend, ServiceClient
from repro.serve.coordinator import JOURNAL_NAME, Coordinator
from repro.serve.worker import run_worker
from repro.workload.generator import GeneratorParams, taskset_seeds
from repro.workload.scenarios import SHORT

PARAMS = GeneratorParams(m=2)


def small_grid(n=4, horizon=2.0):
    """n cheap, deterministic sweep cells (m=2, short horizon)."""
    specs = []
    for seed in taskset_seeds(n, base_seed=23):
        specs.append(
            RunSpec(
                taskset=TaskSetSpec.generated(seed, PARAMS),
                scenario=ScenarioSpec.from_scenario(SHORT),
                monitor=MonitorSpec("simple", 0.6),
                horizon=horizon,
            )
        )
    return specs


@pytest.fixture(scope="module")
def grid():
    return small_grid()


@pytest.fixture(scope="module")
def grid_docs(grid):
    """The grid's serial results as wire documents, in cell order."""
    return [run_result_to_dict(r) for r in SerialBackend().run(grid)]


# ----------------------------------------------------------------------
# Harness: coordinator in a background asyncio thread + worker loops
# ----------------------------------------------------------------------
class _Service:
    """A live coordinator on an ephemeral port, in its own event loop."""

    def __init__(self, root, lease_ttl=60.0):
        self.coord = Coordinator(root, lease_ttl=lease_ttl)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.coord.start())
        self._ready.set()
        try:
            self._loop.run_until_complete(self.coord.serve_forever())
        except asyncio.CancelledError:
            pass

    def start(self):
        self._thread.start()
        assert self._ready.wait(10.0), "coordinator did not start"
        return self

    @property
    def addr(self):
        return f"127.0.0.1:{self.coord.port}"

    def stop(self):
        def cancel_all():
            for task in asyncio.all_tasks(self._loop):
                task.cancel()

        self._loop.call_soon_threadsafe(cancel_all)
        self._thread.join(timeout=10.0)
        self._loop.close()


@pytest.fixture
def make_service(tmp_path):
    services = []

    def factory(name="serve", lease_ttl=60.0):
        svc = _Service(tmp_path / name, lease_ttl=lease_ttl).start()
        services.append(svc)
        return svc

    yield factory
    for svc in services:
        svc.stop()


def drain(addr, **kw):
    """One in-process worker until the coordinator reports drained."""
    kw.setdefault("log", lambda *_: None)
    assert run_worker(addr, once=True, poll_s=0.02, **kw) == 0


@contextlib.contextmanager
def background_workers(addr, n=1, **kw):
    """Worker threads that keep draining until the block exits."""
    stop = threading.Event()
    threads = []

    def loop(i):
        while not stop.is_set():
            run_worker(addr, once=True, poll_s=0.02, owner=f"bg{i}",
                       log=lambda *_: None, **kw)
            stop.wait(0.02)

    for i in range(n):
        t = threading.Thread(target=loop, args=(i,), daemon=True)
        t.start()
        threads.append(t)
    try:
        yield
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=30.0)


# ----------------------------------------------------------------------
# Byte identity: the acceptance criterion
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_sweep_merged_identical_to_file_queue(
        self, grid, tmp_path, make_service
    ):
        ref_dir = prepare_campaign(
            tmp_path / "ref", ShardedCampaign("sweep", grid, shard_size=2)
        )
        work(ref_dir)
        reference = write_merged_results(ref_dir).read_bytes()

        svc = make_service()
        campaign = ShardedCampaign("sweep", grid, shard_size=2)
        with ServiceClient(svc.addr) as client:
            ack = client.submit(campaign.to_dict())
            assert ack.created and ack.shards == 2 and ack.shards_done == 0
            drain(svc.addr, owner="w1")
            row = client.wait(campaign.campaign_key, poll_s=0.02, timeout_s=60)
        assert row["merged"]
        merged = (svc.coord.root / row["dir"] / "merged.json").read_bytes()
        assert merged == reference

    def test_faults_merged_identical_to_file_queue(self, tmp_path, make_service):
        cells = build_campaign(CampaignConfig(seed=5, cells=4, tasksets=1, horizon=3.0))
        ref_dir = prepare_campaign(
            tmp_path / "ref", ShardedCampaign("faults", cells, shard_size=2)
        )
        work(ref_dir)
        reference = write_merged_scorecard(ref_dir).read_bytes()

        svc = make_service()
        campaign = ShardedCampaign("faults", cells, shard_size=2)
        with ServiceClient(svc.addr) as client:
            client.submit(campaign.to_dict())
            drain(svc.addr, owner="w1")
            row = client.wait(campaign.campaign_key, poll_s=0.02, timeout_s=60)
        merged = (svc.coord.root / row["dir"] / "merged.json").read_bytes()
        assert merged == reference

    def test_resubmit_is_pure_fetch(self, grid, grid_docs, make_service):
        svc = make_service()
        campaign = ShardedCampaign("sweep", grid, shard_size=2)
        with ServiceClient(svc.addr) as client:
            client.submit(campaign.to_dict())
            drain(svc.addr)
            client.wait(campaign.campaign_key, poll_s=0.02, timeout_s=60)
            ack = client.submit(campaign.to_dict())
            assert not ack.created and ack.shards_done == ack.shards
            cells = client.fetch(campaign.campaign_key)
        assert [doc for doc, _, _ in cells] == grid_docs


# ----------------------------------------------------------------------
# SIGKILL a worker mid-campaign; a survivor finishes (acceptance)
# ----------------------------------------------------------------------
_VICTIM_SRC = """
import sys
from repro.serve import worker as w
# Beacon after each *committed* shard so the parent can kill us with
# certainty that in-flight state exists on the coordinator.
orig = w.WorkerClient._stream_shard
def beaconed(self, grant, rows, shard_wall_ns):
    out = orig(self, grant, rows, shard_wall_ns)
    open(sys.argv[2], "a").write("shard\\n")
    return out
w.WorkerClient._stream_shard = beaconed
sys.exit(w.run_worker(sys.argv[1], owner="victim", poll_s=0.05,
                      log=lambda *_: None))
"""


class TestKillWorker:
    def test_sigkill_worker_survivor_finishes_byte_identical(
        self, grid, tmp_path, make_service
    ):
        ref_dir = prepare_campaign(
            tmp_path / "ref", ShardedCampaign("sweep", grid, shard_size=1)
        )
        work(ref_dir)
        reference = write_merged_results(ref_dir).read_bytes()

        svc = make_service(lease_ttl=0.5)
        campaign = ShardedCampaign("sweep", grid, shard_size=1)
        with ServiceClient(svc.addr) as client:
            client.submit(campaign.to_dict())

            beacon = tmp_path / "beacon"
            env = dict(os.environ)
            src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.Popen(
                [sys.executable, "-c", _VICTIM_SRC, svc.addr, str(beacon)],
                env=env,
            )
            try:
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    if beacon.exists() and beacon.read_text().count("shard") >= 1:
                        break
                    if proc.poll() is not None:
                        break  # drained before we could kill it - still valid
                    time.sleep(0.01)
                proc.send_signal(signal.SIGKILL)
            finally:
                proc.wait()

            # Survivor: polls past the corpse's lease TTL and finishes.
            drain(svc.addr, owner="survivor")
            row = client.wait(campaign.campaign_key, poll_s=0.02, timeout_s=60)
        merged = (svc.coord.root / row["dir"] / "merged.json").read_bytes()
        assert merged == reference


# ----------------------------------------------------------------------
# Coordinator crash + restart: journal recovery (acceptance)
# ----------------------------------------------------------------------
class TestCoordinatorRecovery:
    def _submit_and_stream_cells(self, root, grid, grid_docs, shard_size):
        """Drive a coordinator up to (but not including) shard_done."""
        coord = Coordinator(root)
        root.mkdir(parents=True, exist_ok=True)
        coord.recover()
        campaign = ShardedCampaign("sweep", grid, shard_size=shard_size)
        (ack,) = coord.handle(wire.Submit(campaign=campaign.to_dict()))
        assert isinstance(ack, wire.SubmitOk) and ack.created
        (grant,) = coord.handle(wire.LeaseRequest(owner="w1"))
        assert isinstance(grant, wire.LeaseGrant)
        for pos in range(grant.start, grant.stop):
            (ok,) = coord.handle(wire.CellResult(
                campaign=grant.campaign, shard=grant.shard, pos=pos,
                doc=grid_docs[pos], cached=False, wall_ns=0,
            ))
            assert ok == wire.CellOk()
        return campaign, grant

    def test_restart_commits_buffered_shard_from_journal(
        self, grid, grid_docs, tmp_path
    ):
        ref_dir = prepare_campaign(
            tmp_path / "ref", ShardedCampaign("sweep", grid, shard_size=len(grid))
        )
        work(ref_dir)
        reference = write_merged_results(ref_dir).read_bytes()

        root = tmp_path / "serve"
        campaign, _ = self._submit_and_stream_cells(
            root, grid, grid_docs, shard_size=len(grid)
        )
        # "Crash": the first coordinator object is simply dropped —
        # nothing was committed, only journaled.
        reborn = Coordinator(root)
        reborn.recover()
        assert reborn.recovered_shards == 1
        state = reborn.campaigns[campaign.campaign_key]
        assert state.complete
        merged = (state.cdir / "merged.json").read_bytes()
        assert merged == reference

    def test_restart_tolerates_torn_journal_tail(self, grid, grid_docs, tmp_path):
        root = tmp_path / "serve"
        campaign, _ = self._submit_and_stream_cells(
            root, grid, grid_docs, shard_size=len(grid)
        )
        journal = root / JOURNAL_NAME
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"ev": "cell", "c": "torn mid-wri')  # no newline
        reborn = Coordinator(root)
        reborn.recover()
        assert reborn.recovered_shards == 1
        assert reborn.campaigns[campaign.campaign_key].complete

    def test_recovered_partial_shard_stays_leasable(
        self, grid, grid_docs, tmp_path
    ):
        root = tmp_path / "serve"
        # Two shards; stream only the granted one's first cell.
        coord = Coordinator(root)
        root.mkdir(parents=True, exist_ok=True)
        coord.recover()
        campaign = ShardedCampaign("sweep", grid, shard_size=2)
        coord.handle(wire.Submit(campaign=campaign.to_dict()))
        (grant,) = coord.handle(wire.LeaseRequest(owner="w1"))
        coord.handle(wire.CellResult(
            campaign=grant.campaign, shard=grant.shard, pos=grant.start,
            doc=grid_docs[grant.start], cached=False, wall_ns=0,
        ))
        reborn = Coordinator(root)
        reborn.recover()
        # Incomplete buffer: nothing committed, shard re-grantable.
        assert reborn.recovered_shards == 0
        (regrant,) = reborn.handle(wire.LeaseRequest(owner="w2"))
        assert isinstance(regrant, wire.LeaseGrant)
        assert regrant.shard == grant.shard


# ----------------------------------------------------------------------
# Leases, heartbeats, idempotence (direct handle(), fake clock)
# ----------------------------------------------------------------------
class TestLeaseSemantics:
    def _coordinator(self, tmp_path, grid, lease_ttl=1.0):
        now = [0.0]
        coord = Coordinator(tmp_path / "serve", lease_ttl=lease_ttl,
                            mono=lambda: now[0])
        coord.root.mkdir(parents=True, exist_ok=True)
        coord.recover()
        campaign = ShardedCampaign("sweep", grid, shard_size=2)
        coord.handle(wire.Submit(campaign=campaign.to_dict()))
        return coord, campaign, now

    def test_grant_exclusivity_heartbeat_and_expiry(self, grid, tmp_path):
        coord, campaign, now = self._coordinator(tmp_path, grid)
        (g1,) = coord.handle(wire.LeaseRequest(owner="a"))
        (g2,) = coord.handle(wire.LeaseRequest(owner="b"))
        assert {g1.shard, g2.shard} == {s.shard_id for s in campaign.shards}
        (nw,) = coord.handle(wire.LeaseRequest(owner="c"))
        assert isinstance(nw, wire.NoWork)
        assert nw.active == 1 and not nw.drained

        # A live heartbeat extends the lease; a foreign one is invalid.
        now[0] = 0.8
        (hb,) = coord.handle(wire.Heartbeat(
            owner="a", campaign=g1.campaign, shard=g1.shard))
        assert hb.valid
        (foreign,) = coord.handle(wire.Heartbeat(
            owner="z", campaign=g1.campaign, shard=g1.shard))
        assert not foreign.valid

        # b never heartbeats: its lease dies at t=1.0 and the shard is
        # stolen; a's extension (0.8 + 1.0) keeps its shard off limits.
        now[0] = 1.5
        (dead,) = coord.handle(wire.Heartbeat(
            owner="b", campaign=g2.campaign, shard=g2.shard))
        assert not dead.valid
        (g3,) = coord.handle(wire.LeaseRequest(owner="c"))
        assert isinstance(g3, wire.LeaseGrant) and g3.shard == g2.shard

    def test_duplicate_and_partial_delivery(self, grid, grid_docs, tmp_path):
        coord, campaign, _ = self._coordinator(tmp_path, grid)
        (grant,) = coord.handle(wire.LeaseRequest(owner="a"))

        # Premature shard_done: rejected with the missing positions.
        (early,) = coord.handle(wire.ShardDone(
            campaign=grant.campaign, shard=grant.shard, owner="a"))
        assert isinstance(early, wire.ShardOk) and not early.accepted
        assert "missing" in early.reason

        cell = wire.CellResult(
            campaign=grant.campaign, shard=grant.shard, pos=grant.start,
            doc=grid_docs[grant.start], cached=False, wall_ns=7,
        )
        assert coord.handle(cell) == [wire.CellOk()]
        assert coord.handle(cell) == [wire.CellOk()]  # duplicate: idempotent
        for pos in range(grant.start + 1, grant.stop):
            coord.handle(wire.CellResult(
                campaign=grant.campaign, shard=grant.shard, pos=pos,
                doc=grid_docs[pos], cached=False, wall_ns=7,
            ))
        (done,) = coord.handle(wire.ShardDone(
            campaign=grant.campaign, shard=grant.shard, owner="a"))
        assert done.accepted
        # Replays after commit stay idempotent (a re-granted worker
        # finishing late must not error out).
        (again,) = coord.handle(wire.ShardDone(
            campaign=grant.campaign, shard=grant.shard, owner="a"))
        assert again.accepted
        assert coord.handle(cell) == [wire.CellOk()]

    def test_bad_positions_and_unknown_ids_rejected(
        self, grid, grid_docs, tmp_path
    ):
        coord, campaign, _ = self._coordinator(tmp_path, grid)
        (grant,) = coord.handle(wire.LeaseRequest(owner="a"))
        (err,) = coord.handle(wire.CellResult(
            campaign=grant.campaign, shard=grant.shard, pos=99,
            doc=grid_docs[0], cached=False, wall_ns=0))
        assert isinstance(err, wire.ErrorReply) and "outside shard" in err.reason
        (err,) = coord.handle(wire.CellResult(
            campaign="f" * 64, shard=grant.shard, pos=0,
            doc=grid_docs[0], cached=False, wall_ns=0))
        assert isinstance(err, wire.ErrorReply) and "unknown campaign" in err.reason
        (err,) = coord.handle(wire.CellResult(
            campaign=grant.campaign, shard="f" * 64, pos=0,
            doc=grid_docs[0], cached=False, wall_ns=0))
        assert isinstance(err, wire.ErrorReply) and "unknown shard" in err.reason


# ----------------------------------------------------------------------
# Executor seam: make_executor(service_addr=) -> ServiceBackend
# ----------------------------------------------------------------------
class TestServiceBackend:
    def test_matches_serial_backend(self, grid, make_service):
        svc = make_service()
        ex = make_executor(service_addr=svc.addr, shard_size=2)
        assert isinstance(ex, ServiceBackend)
        with background_workers(svc.addr, n=2):
            results = ex.run(grid)
        assert results == SerialBackend().run(grid)
        assert ex.stats.cells_total == len(grid)
        assert ex.report.cells_total == len(grid)

        # Re-running the same grid is a pure fetch: no workers needed.
        again = make_executor(service_addr=svc.addr, shard_size=2)
        assert again.run(grid) == results

    def test_service_excludes_checkpoint_dir(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            make_executor(service_addr="127.0.0.1:1", checkpoint_dir=tmp_path)

    def test_fetch_round_trips_result_docs(self, grid, grid_docs, make_service):
        svc = make_service()
        campaign = ShardedCampaign("sweep", grid, shard_size=3)
        with ServiceClient(svc.addr) as client:
            client.submit(campaign.to_dict())
            drain(svc.addr)
            client.wait(campaign.campaign_key, poll_s=0.02, timeout_s=60)
            cells = client.fetch(campaign.campaign_key)
        assert [run_result_from_dict(doc) for doc, _, _ in cells] == [
            run_result_from_dict(doc) for doc in grid_docs
        ]


# ----------------------------------------------------------------------
# Telemetry relay + service-side status
# ----------------------------------------------------------------------
class TestTelemetryAndStatus:
    def test_worker_telemetry_lands_in_campaign_dir(self, grid, make_service):
        svc = make_service()
        campaign = ShardedCampaign("sweep", grid, shard_size=2)
        with ServiceClient(svc.addr) as client:
            client.submit(campaign.to_dict())
            drain(svc.addr, owner="tele-worker", telemetry=True)
            row = client.wait(campaign.campaign_key, poll_s=0.02, timeout_s=60)
        cdir = svc.coord.root / row["dir"]
        assert telemetry_path(cdir, "tele-worker").is_file()
        statuses = worker_statuses(cdir)
        assert any(s.owner == "tele-worker" for s in statuses)

    def test_jobs_and_status_rpc(self, grid, make_service):
        svc = make_service()
        campaign = ShardedCampaign("sweep", grid, shard_size=2)
        with ServiceClient(svc.addr) as client:
            assert client.jobs() == []
            client.submit(campaign.to_dict())
            (row,) = client.jobs()
            assert row["key"] == campaign.campaign_key
            assert row["cells"] == len(grid)
            assert row["shards"] == 2 and row["shards_done"] == 0
            assert not row["merged"]
            drain(svc.addr, owner="w1", telemetry=True)
            (row,) = client.jobs()
            assert row["shards_done"] == 2 and row["merged"]
            status = client.status()
            assert isinstance(status.text, str)
            assert isinstance(status.aggregate, dict)

    def test_cli_status_source_field(self, grid, make_service, capsys):
        svc = make_service()
        campaign = ShardedCampaign("sweep", grid, shard_size=2)
        with ServiceClient(svc.addr) as client:
            client.submit(campaign.to_dict())
        drain(svc.addr, owner="w1", telemetry=True)
        main(["status", "--service", svc.addr, "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["source"] == "service"

    def test_cli_submit_jobs_roundtrip(self, grid, tmp_path, make_service, capsys):
        svc = make_service()
        doc_path = tmp_path / "campaign.json"
        doc_path.write_text(json.dumps(
            ShardedCampaign("sweep", grid, shard_size=2).to_dict()))
        main(["submit", str(doc_path), "--connect", svc.addr])
        out = capsys.readouterr().out
        assert "registered" in out
        drain(svc.addr)
        main(["jobs", "--connect", svc.addr, "--json"])
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1 and rows[0]["shards_done"] == 2
