"""Per-request sojourn-time queueing metrics (open-system traffic).

Pins the satellite's contract:

* :class:`SojournStats.from_samples` — nearest-rank percentiles,
  censored-request accounting, empty-sample degenerate case;
* traffic runs carry a ``sojourn`` on their :class:`RunResult`;
  scripted-overload runs keep ``sojourn is None``;
* result documents omit the field when ``None`` (byte stability of
  pre-traffic artifacts) and round-trip it when present — including
  documents written before the field existed;
* :func:`render_sojourn_table` aggregates per-cell rows and stays
  header-only when no run has sojourn stats.
"""

import json

from repro.experiments.metrics import RunResult, SojournStats
from repro.experiments.traffic import (
    figure_offered_load,
    poisson_traffic,
    render_sojourn_table,
    traffic_sweep,
)
from repro.io.results_json import run_result_from_dict, run_result_to_dict
from repro.runtime.executor import run_spec
from repro.runtime.spec import MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.workload.generator import GeneratorParams
from repro.workload.scenarios import CALM, SHORT

PARAMS = GeneratorParams(m=2)


def make_spec(traffic=None):
    return RunSpec(
        taskset=TaskSetSpec.generated(2015, PARAMS),
        scenario=ScenarioSpec.from_scenario(CALM if traffic else SHORT),
        monitor=MonitorSpec("simple", 0.6),
        horizon=3.0,
        traffic=traffic,
    )


class TestSojournStats:
    def test_nearest_rank_percentiles(self):
        samples = [0.5, 0.1, 0.4, 0.2, 0.3]  # unsorted on purpose
        s = SojournStats.from_samples(samples, requests=5)
        assert s.requests == 5 and s.served == 5
        assert s.mean_s == sum(samples) / 5
        assert s.p50_s == 0.3  # ceil(0.5 * 5) = rank 3
        assert s.p95_s == 0.5  # ceil(0.95 * 5) = rank 5
        assert s.max_s == 0.5

    def test_censored_requests_counted_but_not_sampled(self):
        s = SojournStats.from_samples([1.0], requests=4)
        assert s.requests == 4 and s.served == 1
        assert s.mean_s == s.p50_s == s.p95_s == s.max_s == 1.0

    def test_empty_samples(self):
        s = SojournStats.from_samples([], requests=3)
        assert s.served == 0
        assert s.mean_s == 0.0 and s.max_s == 0.0
        assert "served=" in s.row()

    def test_single_sample_all_ranks_collapse(self):
        s = SojournStats.from_samples([0.25], requests=1)
        assert s.p50_s == s.p95_s == s.max_s == 0.25


class TestRunResults:
    def test_traffic_run_has_sojourn(self):
        r = run_spec(make_spec(traffic=poisson_traffic(0.45, m=2, seed=0)))
        assert r.sojourn is not None
        assert r.sojourn.requests > 0
        assert r.sojourn.served <= r.sojourn.requests
        assert r.sojourn.mean_s >= 0.0
        assert r.sojourn.max_s >= r.sojourn.p95_s >= r.sojourn.p50_s >= 0.0

    def test_scripted_run_has_no_sojourn(self):
        assert run_spec(make_spec()).sojourn is None

    def test_sojourn_is_deterministic(self):
        spec = make_spec(traffic=poisson_traffic(0.45, m=2, seed=0))
        assert run_spec(spec).sojourn == run_spec(spec).sojourn


class TestResultDocs:
    def test_doc_omits_sojourn_when_none(self):
        doc = run_result_to_dict(run_spec(make_spec()))
        assert "sojourn" not in doc
        assert run_result_from_dict(doc).sojourn is None

    def test_doc_round_trips_sojourn(self):
        r = run_spec(make_spec(traffic=poisson_traffic(0.45, m=2, seed=0)))
        doc = json.loads(json.dumps(run_result_to_dict(r)))
        assert doc["sojourn"]["requests"] == r.sojourn.requests
        assert run_result_from_dict(doc) == r

    def test_pre_sojourn_document_still_loads(self):
        # A cache entry written before the field existed: no "sojourn"
        # key at all.  It must load as None, not raise.
        doc = run_result_to_dict(run_spec(make_spec()))
        doc.pop("sojourn", None)
        r = run_result_from_dict(doc)
        assert isinstance(r, RunResult) and r.sojourn is None


class TestRendering:
    def _results(self):
        refs = [TaskSetSpec.generated(2015, PARAMS)]
        traffics = [(0.45, poisson_traffic(0.45, m=2, seed=0))]
        return traffic_sweep(
            refs, traffics, monitors=(MonitorSpec("simple", 0.6),), horizon=2.0,
        )

    def test_table_has_one_row_per_cell(self):
        results = self._results()
        table = render_sojourn_table(results, xlabel="load/cpu")
        lines = table.splitlines()
        assert "load/cpu" in lines[0]
        assert len(lines) == 1 + len(results)
        assert "requests=" in lines[1] and "p95=" in lines[1]

    def test_table_header_only_without_sojourn(self):
        results = {("SIMPLE(s=0.6)", 0.1): [run_spec(make_spec())]}
        table = render_sojourn_table(results)
        assert len(table.splitlines()) == 1

    def test_figure_results_out_exposes_raw_runs(self):
        refs = [TaskSetSpec.generated(2015, PARAMS)]
        raw = {}
        figure_offered_load(
            refs, m=2, loads_per_cpu=(0.45,),
            monitors=(MonitorSpec("simple", 0.6),), horizon=2.0,
            results_out=raw,
        )
        assert set(raw) == {("SIMPLE(s=0.6)", 0.45)}
        (runs,) = raw.values()
        assert runs[0].sojourn is not None
