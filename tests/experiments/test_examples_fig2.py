"""Tests for the Fig. 2 / Fig. 3 example systems.

The quantitative waypoints asserted here are the ones the paper's prose
fixes; DESIGN.md substitution 5 records how the reconstruction relates
to the original figures.
"""

import pytest

from repro.experiments.examples_fig2 import (
    FIG2_TOLERANCE,
    figure2_taskset,
    figure3_taskset,
    overload_behavior,
    run_example,
)
from repro.model.task import CriticalityLevel as L


@pytest.fixture(scope="module")
def fig2a():
    return run_example(figure2_taskset(), overloaded=False, until=72.0)


@pytest.fixture(scope="module")
def fig2b():
    return run_example(figure2_taskset(), overloaded=True, until=72.0)


@pytest.fixture(scope="module")
def fig2c():
    return run_example(figure2_taskset(), overloaded=True, recovery_speed=0.5,
                       until=72.0)


class TestTaskSets:
    def test_fig2_fully_utilized(self):
        ts = figure2_taskset()
        # U_C = 5/3, supply = 2 - 2/6 = 5/3: zero slack.
        assert ts.utilization(L.C, level=L.C) == pytest.approx(5 / 3)
        assert sum(ts.level_c_supply()) == pytest.approx(5 / 3)

    def test_fig2_tau1_matches_prose(self):
        """The prose fixes tau1 = (T=4, Y=3)."""
        ts = figure2_taskset()
        assert ts[1].period == 4.0
        assert ts[1].relative_pp == 3.0

    def test_fig2_tau2_period_matches_release_at_36(self):
        assert figure2_taskset()[2].period == 6.0

    def test_tolerance_is_three(self):
        ts = figure2_taskset()
        assert all(t.tolerance == FIG2_TOLERANCE for t in ts.level(L.C))

    def test_fig3_single_c_task_zero_per_task_slack(self):
        ts = figure3_taskset()
        cs = ts.level(L.C)
        assert len(cs) == 1
        # u = 5/6 exactly equals per-CPU availability 1 - 2/12.
        assert cs[0].utilization(L.C) == pytest.approx(5 / 6)
        assert ts.level_c_supply()[0] == pytest.approx(5 / 6)

    def test_overload_behavior_only_time12_jobs(self):
        b = overload_behavior(True)
        ts = figure2_taskset()
        a0 = ts[100]
        assert b.exec_time(a0, 0, 0.0) == 2.0
        assert b.exec_time(a0, 1, 12.0) == 4.0  # full level-A PWCET
        assert b.exec_time(a0, 2, 24.0) == 2.0


class TestFig2aNoOverload:
    def test_tau26_waypoint(self, fig2a):
        """Paper: tau_{2,6} released at 36 completes at 43, R = 7."""
        j = fig2a.trace.job(2, 6)
        assert j.release == 36.0
        assert j.completion == 43.0
        assert j.response_time == 7.0

    def test_no_tolerance_misses(self, fig2a):
        assert fig2a.monitor.miss_count == 0

    def test_bounded_responses(self, fig2a):
        """Response times settle into a repeating bounded pattern."""
        for tid in (1, 2, 3):
            rs = [j.response_time for j in fig2a.trace.jobs_of(tid)
                  if j.completion is not None]
            assert max(rs) <= 12.0

    def test_some_jobs_complete_after_pp(self, fig2a):
        """The paper notes this is allowed by the model."""
        late = [j for j in fig2a.trace.completed(L.C) if j.pp_lateness is not None
                and j.pp_lateness > 0]
        assert late


class TestFig2bOverloadNoRecovery:
    def test_tau26_degraded(self, fig2b):
        """Overload degrades tau_{2,6} (paper: R goes 7 -> 10; our
        reconstruction: 7 -> 9)."""
        j = fig2b.trace.job(2, 6)
        assert j.release == 36.0
        assert j.response_time > 7.0

    def test_degradation_persists(self, fig2b, fig2a):
        """Zero slack: late-schedule responses stay worse than (a)."""
        def tail_max(run, tid):
            rs = [j.response_time for j in run.trace.jobs_of(tid)
                  if j.completion is not None and j.release >= 36.0]
            return max(rs)
        assert tail_max(fig2b, 3) > tail_max(fig2a, 3)

    def test_misses_accumulate_without_recovery(self, fig2b):
        assert fig2b.monitor.miss_count > 0
        assert fig2b.monitor.episodes == []


class TestFig2cRecovery:
    def test_single_recovery_episode(self, fig2c):
        eps = fig2c.monitor.episodes
        assert len(eps) == 1
        assert eps[0].end is not None

    def test_slowdown_to_half_then_back(self, fig2c):
        changes = fig2c.trace.speed_changes
        assert changes[0][1] == 0.5
        assert changes[-1][1] == 1.0
        # Our reconstruction slows at 18 and recovers at 30 (paper's
        # figure: 19 and 29 — same episode length, one tick offset).
        assert changes[0][0] == pytest.approx(18.0)
        assert changes[-1][0] == pytest.approx(30.0)

    def test_tau1_virtual_release_arithmetic(self, fig2c):
        """Releases stretch per eq. 5 under s = 0.5."""
        r5 = fig2c.trace.job(1, 5)
        assert r5.virtual_release == pytest.approx(20.0)
        # v(r)=20 on the 0.5-speed segment starting at 18: actual 22.
        assert r5.release == pytest.approx(22.0)
        r6 = fig2c.trace.job(1, 6)
        assert r6.release == pytest.approx(30.0)

    def test_tau26_restored(self, fig2c):
        """Paper: with recovery tau_{2,6} completes at 47 with R similar
        to the no-overload case (ours: R = 5, paper: R = 6)."""
        j = fig2c.trace.job(2, 6)
        assert j.completion == pytest.approx(47.0)
        assert j.response_time <= 7.0

    def test_post_recovery_responses_normal(self, fig2c, fig2a):
        post = [j.response_time for j in fig2c.trace.completed(L.C)
                if j.release >= 36.0]
        normal_max = max(j.response_time for j in fig2a.trace.completed(L.C))
        assert max(post) <= normal_max + 1e-9


class TestFig3PerTaskBottleneck:
    def test_no_overload_meets_tolerance(self):
        run = run_example(figure3_taskset(), overloaded=False, until=120.0)
        assert run.monitor.miss_count == 0

    def test_overload_degrades_permanently_without_recovery(self):
        run = run_example(figure3_taskset(), overloaded=True, until=240.0)
        late = [j for j in run.trace.completed(L.C) if j.release > 100.0]
        # Long after the single overload, lateness is still elevated:
        # the task has zero per-task slack despite system-wide slack.
        lat = [j.completion - (j.release + 5.0) for j in late]
        assert min(lat) > 3.0 or run.monitor.miss_count > 10

    def test_recovery_restores_normal_behavior(self):
        run = run_example(figure3_taskset(), overloaded=True,
                          recovery_speed=0.5, until=240.0)
        assert len(run.monitor.episodes) == 1
        assert run.monitor.episodes[0].end is not None
        late = [j for j in run.trace.completed(L.C) if j.release > 100.0]
        lat = [j.completion - (j.release + 5.0) for j in late]
        assert max(lat) <= 3.0
