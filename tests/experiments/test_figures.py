"""Tests for the figure sweeps (repro.experiments.figures).

These run reduced-scale sweeps (2 task sets on 2 CPUs, two parameter
values) — the full-scale reproduction lives in examples/reproduce_paper.py
and the benchmarks.
"""

import pytest

from repro.experiments.figures import adaptive_sweep, figure6, figure7, figure8
from repro.workload.generator import GeneratorParams, generate_tasksets
from repro.workload.scenarios import LONG, SHORT


@pytest.fixture(scope="module")
def tasksets():
    return generate_tasksets(2, base_seed=11, params=GeneratorParams(m=2))


@pytest.fixture(scope="module")
def fig6(tasksets):
    return figure6(tasksets, s_values=(0.4, 1.0), scenarios=(SHORT, LONG))


@pytest.fixture(scope="module")
def sweep(tasksets):
    return adaptive_sweep(tasksets, a_values=(0.4, 1.0), scenarios=(SHORT,))


class TestFigure6:
    def test_structure(self, fig6):
        assert fig6.figure_id == "Fig. 6"
        assert [s.label for s in fig6.series] == ["SHORT", "LONG"]
        assert all(len(s.points) == 2 for s in fig6.series)

    def test_series_points_have_cis(self, fig6):
        p = fig6.point("SHORT", 0.4)
        assert p.ci.n == 2
        assert p.ci.mean > 0

    def test_shape_smaller_s_less_dissipation(self, fig6):
        for label in ("SHORT", "LONG"):
            assert fig6.point(label, 0.4).ci.mean <= fig6.point(label, 1.0).ci.mean

    def test_shape_long_worse_than_short(self, fig6):
        for s in (0.4, 1.0):
            assert fig6.point("LONG", s).ci.mean > fig6.point("SHORT", s).ci.mean

    def test_render_contains_values(self, fig6):
        text = fig6.render(unit_scale=1e3, unit="ms")
        assert "Fig. 6" in text and "SHORT" in text and "LONG" in text
        assert "±" in text

    def test_point_lookup_missing(self, fig6):
        with pytest.raises(KeyError):
            fig6.point("SHORT", 0.123)


class TestAdaptiveFigures:
    def test_fig7_reads_dissipation(self, sweep):
        fig = figure7(sweep)
        assert fig.figure_id == "Fig. 7"
        assert fig.point("SHORT", 0.4).ci.mean > 0

    def test_fig8_reads_min_speed(self, sweep):
        fig = figure8(sweep)
        assert fig.figure_id == "Fig. 8"
        for a in (0.4, 1.0):
            p = fig.point("SHORT", a)
            assert 0.0 < p.ci.mean < 1.0

    def test_fig8_min_speed_increases_with_a(self, sweep):
        fig = figure8(sweep)
        assert fig.point("SHORT", 0.4).ci.mean <= fig.point("SHORT", 1.0).ci.mean

    def test_min_speed_below_aggressiveness(self, sweep):
        """ADAPTIVE's chosen speed is a * (Y+xi)/R < a on a miss."""
        fig = figure8(sweep)
        for a in (0.4, 1.0):
            assert fig.point("SHORT", a).ci.mean < a
