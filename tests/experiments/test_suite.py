"""Tests for the programmatic reproduction suite (tiny scale)."""

import json

import pytest

from repro.experiments.suite import full_reproduction
from repro.workload.generator import GeneratorParams
from repro.workload.scenarios import SHORT


@pytest.fixture(scope="module")
def report():
    return full_reproduction(
        tasksets=2,
        base_seed=3,
        sweep_values=(0.4, 1.0),
        scenarios=(SHORT,),
        params=GeneratorParams(m=2),
        overhead_tasksets=1,
        overhead_horizon=1.0,
    )


class TestFullReproduction:
    def test_all_figures_present(self, report):
        assert report.fig6.figure_id == "Fig. 6"
        assert report.fig7.figure_id == "Fig. 7"
        assert report.fig8.figure_id == "Fig. 8"
        assert report.fig9.avg_with_vt > 0
        assert report.tasksets == 2

    def test_figures_share_scope(self, report):
        for fig in (report.fig6, report.fig7, report.fig8):
            assert [s.label for s in fig.series] == ["SHORT"]
            assert [p.x for p in fig.series[0].points] == [0.4, 1.0]

    def test_render_contains_everything(self, report):
        text = report.render()
        for token in ("Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9"):
            assert token in text

    def test_write_json(self, report, tmp_path):
        paths = report.write_json(tmp_path)
        assert len(paths) == 4
        doc = json.loads((tmp_path / "fig6.json").read_text())
        assert doc["figure_id"] == "Fig. 6"
        doc9 = json.loads((tmp_path / "fig9.json").read_text())
        assert doc9["avg_ratio"] > 0

    def test_prebuilt_tasksets(self):
        from repro.workload.generator import generate_tasksets

        sets = generate_tasksets(1, base_seed=9, params=GeneratorParams(m=2))
        rep = full_reproduction(
            prebuilt=sets, sweep_values=(1.0,), scenarios=(SHORT,),
            overhead_tasksets=1, overhead_horizon=1.0,
        )
        assert rep.tasksets == 1

    def test_cached_rerun_simulates_nothing(self, tmp_path):
        from repro.runtime.cache import ResultCache
        from repro.runtime.executor import SerialBackend

        kwargs = dict(
            tasksets=1, base_seed=3, sweep_values=(1.0,), scenarios=(SHORT,),
            params=GeneratorParams(m=2), overhead_tasksets=1,
            overhead_horizon=1.0,
        )
        cache = ResultCache(tmp_path)
        cold = SerialBackend(cache=cache)
        first = full_reproduction(executor=cold, **kwargs)
        warm = SerialBackend(cache=cache)
        second = full_reproduction(executor=warm, **kwargs)
        assert cold.total.cells_simulated > 0
        assert warm.total.cells_simulated == 0
        assert warm.total.cache_hits == cold.total.cells_simulated
        assert second.fig6 == first.fig6
        assert second.fig7 == first.fig7
        assert second.fig8 == first.fig8
