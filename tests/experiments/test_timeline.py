"""Tests for response-time timelines (repro.experiments.timeline)."""

import pytest

from repro.experiments.examples_fig2 import figure2_taskset, run_example
from repro.experiments.timeline import TimelineBin, render_sparkline, response_timeline


@pytest.fixture(scope="module")
def fig2_runs():
    ts = figure2_taskset()
    a = run_example(ts, overloaded=False, until=72.0)
    b = run_example(ts, overloaded=True, until=72.0)
    c = run_example(ts, overloaded=True, recovery_speed=0.5, until=72.0)
    return ts, a, b, c


class TestResponseTimeline:
    def test_bins_cover_horizon(self, fig2_runs):
        ts, a, _, _ = fig2_runs
        bins = response_timeline(a.trace, ts, bin_width=6.0, horizon=72.0)
        assert len(bins) == 12
        assert bins[0].start == 0.0
        assert bins[-1].end == pytest.approx(72.0)

    def test_all_bins_populated_in_steady_run(self, fig2_runs):
        ts, a, _, _ = fig2_runs
        bins = response_timeline(a.trace, ts, bin_width=6.0, horizon=66.0)
        assert all(b.jobs > 0 for b in bins)

    def test_degradation_visible_without_recovery(self, fig2_runs):
        """Fig. 2(b): bins after the overload stay above the baseline."""
        ts, a, b, _ = fig2_runs
        base = response_timeline(a.trace, ts, bin_width=6.0, horizon=66.0)
        degraded = response_timeline(b.trace, ts, bin_width=6.0, horizon=66.0)
        # Compare the tail (releases >= 36): max normalized response.
        tail = slice(6, 11)
        assert max(x.max_normalized for x in degraded[tail]) > max(
            x.max_normalized for x in base[tail]
        )

    def test_recovery_restores_baseline(self, fig2_runs):
        ts, a, _, c = fig2_runs
        base = response_timeline(a.trace, ts, bin_width=6.0, horizon=66.0)
        rec = response_timeline(c.trace, ts, bin_width=6.0, horizon=66.0)
        tail = slice(7, 11)
        assert max(x.max_normalized for x in rec[tail]) <= max(
            x.max_normalized for x in base[tail]
        ) + 1e-9

    def test_bad_bin_width(self, fig2_runs):
        ts, a, _, _ = fig2_runs
        with pytest.raises(ValueError):
            response_timeline(a.trace, ts, bin_width=0.0)


class TestSparkline:
    def make_bins(self, values):
        return [
            TimelineBin(start=i, end=i + 1, jobs=1, max_response=v,
                        max_normalized=v)
            for i, v in enumerate(values)
        ]

    def test_monotone_heights(self):
        art = render_sparkline(self.make_bins([0.0, 0.5, 1.0]))
        assert len(art) == 3
        assert art[0] <= art[1] <= art[2]

    def test_all_zero(self):
        art = render_sparkline(self.make_bins([0.0, 0.0]))
        assert art == "▁▁"

    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_downsampling_preserves_spikes(self):
        values = [0.1] * 50
        values[25] = 5.0
        art = render_sparkline(self.make_bins(values), width=10)
        assert len(art) == 10
        assert "█" in art
