"""End-to-end tests for open-system traffic runs.

Pins the acceptance criteria of the traffic layer:

* both kernel backends produce identical fingerprints on traffic cells;
* serial / pool / batched execution agree bit-for-bit on traffic grids;
* attaching traffic to a RunSpec changes its cache key, while specs
  *without* traffic keep their exact pre-traffic canonical JSON;
* the sweep + figure helpers produce sane axes;
* the ``traffic`` CLI subcommand parses.
"""

import pytest

from repro.cli import build_parser
from repro.experiments.traffic import (
    figure_offered_load,
    mmpp_traffic,
    poisson_traffic,
    traffic_sweep,
)
from repro.io.runspec_json import (
    runspec_canonical_json,
    runspec_from_json,
    spec_key,
)
from repro.runtime.executor import SerialBackend, run_spec
from repro.runtime.spec import MonitorSpec, RunSpec, ScenarioSpec, TaskSetSpec
from repro.sim.diffcheck import DiffScenario, compare_backends
from repro.workload.generator import GeneratorParams
from repro.workload.scenarios import CALM, SHORT

PARAMS = GeneratorParams(m=2)


def make_spec(traffic=None, monitor="simple", s=0.6):
    return RunSpec(
        taskset=TaskSetSpec.generated(2015, PARAMS),
        scenario=ScenarioSpec.from_scenario(CALM if traffic else SHORT),
        monitor=MonitorSpec(monitor, s),
        horizon=3.0,
        traffic=traffic,
    )


class TestBackendInvariance:
    @pytest.mark.parametrize("preset", ["poisson", "mmpp", "diurnal"])
    def test_reference_and_soa_agree_on_traffic(self, preset):
        sc = DiffScenario(
            seed=301, m=2, behavior="constant", monitor="simple",
            monitor_arg=0.6, horizon=1.0, traffic=preset,
        )
        res = compare_backends(sc)
        assert res.equal, res.mismatched


class TestCacheKeys:
    def test_plain_spec_has_no_traffic_key(self):
        """Pre-traffic RunSpecs keep their exact canonical text (and
        therefore their cache keys): the traffic field is emitted only
        when present."""
        text = runspec_canonical_json(make_spec())
        assert '"traffic"' not in text

    def test_traffic_changes_the_key(self):
        plain = make_spec()
        spec = make_spec(traffic=poisson_traffic(0.2, m=2, seed=1))
        assert spec_key(spec) != spec_key(plain)
        other = make_spec(traffic=poisson_traffic(0.2, m=2, seed=2))
        assert spec_key(spec) != spec_key(other)

    def test_traffic_spec_round_trips_through_json(self):
        for tspec in (
            poisson_traffic(0.3, m=2, seed=3),
            mmpp_traffic(0.05, m=2, seed=4),
        ):
            spec = make_spec(traffic=tspec)
            back = runspec_from_json(spec.canonical_json())
            assert back == spec
            assert spec_key(back) == spec_key(spec)

    def test_run_spec_executes_traffic(self):
        spec = make_spec(traffic=poisson_traffic(0.45, m=2, seed=0))
        r = run_spec(spec)
        assert r.scenario == "CALM"
        assert r.events > 0
        # Same spec, same result: traffic cells cache like any others.
        assert run_spec(spec) == r


class TestSweepAndFigures:
    @pytest.fixture(scope="class")
    def refs(self):
        return [TaskSetSpec.generated(2015, PARAMS)]

    def test_sweep_grid_shape(self, refs):
        traffics = [(x, poisson_traffic(x, m=2, seed=0)) for x in (0.1, 0.45)]
        monitors = (MonitorSpec("simple", 0.6),)
        results = traffic_sweep(
            refs, traffics, monitors=monitors, horizon=2.0,
        )
        assert set(results) == {("SIMPLE(s=0.6)", 0.1), ("SIMPLE(s=0.6)", 0.45)}
        assert all(len(v) == 1 for v in results.values())

    def test_serial_results_deterministic(self, refs):
        traffics = [(0.45, poisson_traffic(0.45, m=2, seed=0))]
        monitors = (MonitorSpec("simple", 0.6),)
        a = traffic_sweep(refs, traffics, monitors=monitors, horizon=2.0,
                          executor=SerialBackend())
        b = traffic_sweep(refs, traffics, monitors=monitors, horizon=2.0,
                          executor=SerialBackend())
        assert a == b

    def test_figure_offered_load_axes(self, refs):
        fig = figure_offered_load(
            refs, m=2, loads_per_cpu=(0.1, 0.45),
            monitors=(MonitorSpec("simple", 0.6),), horizon=2.0,
        )
        assert fig.figure_id == "Fig. T1"
        assert [s.label for s in fig.series] == ["SIMPLE(s=0.6)"]
        points = fig.series[0].points
        assert [p.x for p in points] == [0.1, 0.45]
        assert all(p.ci.mean >= 0.0 for p in points)
        # Rendering must not explode (the CLI prints this table).
        assert "Fig. T1" in fig.render(1e3, "ms")


class TestCli:
    def test_traffic_subcommand_parses(self):
        parser = build_parser()
        args = parser.parse_args([
            "traffic", "--figure", "load", "--m", "8",
            "--tasksets", "2", "--values", "0.1", "0.4",
        ])
        assert args.command == "traffic"
        assert args.figure == "load"
        assert args.m == 8
        assert args.values == [0.1, 0.4]

    def test_burst_figure_flag(self):
        parser = build_parser()
        args = parser.parse_args(["traffic", "--figure", "burst"])
        assert args.figure == "burst"
