"""Tests for the Fig. 9 overhead measurement."""

import pytest

from repro.experiments.overhead import OverheadResult, measure_overheads
from repro.workload.generator import GeneratorParams, generate_tasksets


class TestOverheadResult:
    def test_ratios(self):
        r = OverheadResult(
            avg_with_vt=1.4, max_with_vt=4.0,
            avg_without_vt=1.0, max_without_vt=2.0,
            samples_with_vt=100, samples_without_vt=100,
        )
        assert r.avg_ratio == pytest.approx(1.4)
        assert r.max_ratio == pytest.approx(2.0)

    def test_render(self):
        r = OverheadResult(1.4, 4.0, 1.0, 2.0, 100, 100,
                           avg_with_vt_active=2.0, max_with_vt_active=5.0,
                           samples_with_vt_active=50)
        text = r.render()
        assert "without virtual time" in text
        assert "with virtual time (idle)" in text
        assert "with virtual time (active)" in text
        assert "ratio" in text

    def test_render_without_active_variant(self):
        r = OverheadResult(1.4, 4.0, 1.0, 2.0, 100, 100)
        assert "active" not in r.render()

    def test_zero_baseline_infinite_ratio(self):
        r = OverheadResult(1.0, 1.0, 0.0, 0.0, 1, 1)
        assert r.avg_ratio == float("inf")


class TestMeasureOverheads:
    @pytest.fixture(scope="class")
    def result(self):
        tasksets = generate_tasksets(1, base_seed=3, params=GeneratorParams(m=2))
        return measure_overheads(tasksets, horizon=1.0)

    def test_collects_samples_all_variants(self, result):
        assert result.samples_with_vt > 100
        assert result.samples_without_vt > 100
        assert result.samples_with_vt_active > 100
        assert result.avg_with_vt > 0
        assert result.avg_without_vt > 0
        assert result.max_with_vt >= result.avg_with_vt

    def test_idle_variants_see_identical_schedules(self, result):
        """The apples-to-apples comparison: same event counts."""
        assert result.samples_with_vt == result.samples_without_vt

    def test_mechanism_overhead_is_modest(self, result):
        """The reproduced Fig. 9 claim (very loose: wall-clock noise)."""
        assert result.avg_ratio < 2.0
