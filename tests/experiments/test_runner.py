"""Tests for the experiment runner (repro.experiments.runner)."""

import pytest

from repro.core.monitor import AdaptiveMonitor, NullMonitor, SimpleMonitor
from repro.experiments.runner import ExperimentOutput, MonitorSpec, run_overload_experiment
from repro.sim.kernel import MC2Kernel
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import DOUBLE, SHORT

# A small platform keeps these tests fast.
PARAMS = GeneratorParams(m=2)


@pytest.fixture(scope="module")
def small_ts():
    return generate_taskset(seed=5, params=PARAMS)


class TestMonitorSpec:
    def test_labels(self):
        assert MonitorSpec("simple", 0.6).label == "SIMPLE(s=0.6)"
        assert MonitorSpec("adaptive", 0.2).label == "ADAPTIVE(a=0.2)"
        assert MonitorSpec("none").label == "NONE"

    def test_build_types(self):
        k = MC2Kernel(generate_taskset(1, PARAMS))
        assert isinstance(MonitorSpec("simple", 0.5).build(k), SimpleMonitor)
        assert isinstance(MonitorSpec("adaptive", 0.5).build(k), AdaptiveMonitor)
        assert isinstance(MonitorSpec("none").build(k), NullMonitor)

    def test_validation(self):
        with pytest.raises(ValueError):
            MonitorSpec("weird")
        with pytest.raises(ValueError):
            MonitorSpec("simple", 0.0)
        with pytest.raises(ValueError):
            MonitorSpec("simple", 1.2)


class TestRunOverloadExperiment:
    def test_basic_run_produces_metrics(self, small_ts):
        r = run_overload_experiment(small_ts, SHORT, MonitorSpec("simple", 0.6))
        assert r.scenario == "SHORT"
        assert r.monitor == "SIMPLE(s=0.6)"
        assert r.dissipation > 0
        assert not r.truncated
        assert r.miss_count > 0
        assert r.min_speed == pytest.approx(0.6)

    def test_recovery_completes_before_horizon(self, small_ts):
        r = run_overload_experiment(small_ts, SHORT, MonitorSpec("simple", 0.4))
        assert r.sim_end < 30.0

    def test_keep_artifacts_returns_output(self, small_ts):
        out = run_overload_experiment(
            small_ts, SHORT, MonitorSpec("simple", 0.6), keep_artifacts=True
        )
        assert isinstance(out, ExperimentOutput)
        assert out.result.dissipation > 0
        assert out.kernel.now == out.result.sim_end
        assert not out.monitor.recovery_mode

    def test_requires_tolerances(self):
        ts = generate_taskset(1, GeneratorParams(m=2, assign_tolerances=False))
        with pytest.raises(ValueError, match="tolerance"):
            run_overload_experiment(ts, SHORT, MonitorSpec("simple", 0.6))

    def test_adaptive_min_speed_below_a(self, small_ts):
        r = run_overload_experiment(small_ts, SHORT, MonitorSpec("adaptive", 0.6))
        assert r.min_speed < 0.6

    def test_smaller_s_recovers_faster(self, small_ts):
        fast = run_overload_experiment(small_ts, SHORT, MonitorSpec("simple", 0.2))
        slow = run_overload_experiment(small_ts, SHORT, MonitorSpec("simple", 1.0))
        assert fast.dissipation < slow.dissipation

    def test_double_dissipation_measured_from_second_window(self, small_ts):
        r = run_overload_experiment(small_ts, DOUBLE, MonitorSpec("simple", 0.4))
        # dissipation is relative to t = 2.0 (end of the second window).
        assert r.sim_end > 2.0
        assert r.dissipation < r.sim_end

    def test_no_budget_variant_is_harsher(self, small_ts):
        with_b = run_overload_experiment(
            small_ts, SHORT, MonitorSpec("simple", 0.6), level_c_budgets=True
        )
        without = run_overload_experiment(
            small_ts, SHORT, MonitorSpec("simple", 0.6),
            level_c_budgets=False, horizon=60.0,
        )
        assert without.dissipation > with_b.dissipation

    def test_deterministic(self, small_ts):
        a = run_overload_experiment(small_ts, SHORT, MonitorSpec("simple", 0.6))
        b = run_overload_experiment(small_ts, SHORT, MonitorSpec("simple", 0.6))
        assert a == b
