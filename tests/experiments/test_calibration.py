"""Tests for calibration-based tolerances (repro.experiments.calibration)."""

import pytest

from repro.core.monitor import SimpleMonitor
from repro.experiments.calibration import calibrate_tolerances, measure_pp_lateness
from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel as L
from repro.sim.kernel import MC2Kernel
from repro.workload.generator import GeneratorParams, generate_taskset

PARAMS = GeneratorParams(m=2, assign_tolerances=False)


@pytest.fixture(scope="module")
def ts():
    return generate_taskset(seed=21, params=PARAMS)


class TestMeasurePPLateness:
    def test_every_c_task_covered(self, ts):
        worst = measure_pp_lateness(ts, horizon=2.0)
        assert set(worst) == {t.task_id for t in ts.level(L.C)}
        assert all(v >= 0.0 for v in worst.values())

    def test_longer_window_never_smaller(self, ts):
        short = measure_pp_lateness(ts, horizon=1.0)
        long_ = measure_pp_lateness(ts, horizon=4.0)
        for tid in short:
            assert long_[tid] >= short[tid] - 1e-12

    def test_bad_horizon_rejected(self, ts):
        with pytest.raises(ValueError):
            measure_pp_lateness(ts, horizon=0.0)


class TestCalibrateTolerances:
    def test_assigns_positive_tolerances(self, ts):
        out = calibrate_tolerances(ts, horizon=2.0, margin=1.5)
        for t in out.level(L.C):
            assert t.tolerance is not None and t.tolerance > 0.0

    def test_margin_scales(self, ts):
        lo = calibrate_tolerances(ts, horizon=2.0, margin=1.0)
        hi = calibrate_tolerances(ts, horizon=2.0, margin=3.0)
        for t in lo.level(L.C):
            assert hi[t.task_id].tolerance == pytest.approx(3.0 * t.tolerance)

    def test_margin_below_one_rejected(self, ts):
        with pytest.raises(ValueError):
            calibrate_tolerances(ts, margin=0.9)

    def test_floor_applies_to_quiet_tasks(self, ts):
        out = calibrate_tolerances(ts, horizon=2.0, margin=1.0, floor=0.5)
        assert all(t.tolerance >= 0.5 for t in out.level(L.C))

    def test_calibrated_tolerances_not_missed_in_replay(self, ts):
        """Re-running the same normal behaviour never misses calibrated
        tolerances (margin > 1 gives headroom over the observed worst)."""
        out = calibrate_tolerances(ts, horizon=3.0, margin=1.5)
        kernel = MC2Kernel(out, behavior=ConstantBehavior(L.C))
        mon = SimpleMonitor(kernel, s=0.5)
        kernel.attach_monitor(mon)
        kernel.run(3.0)
        assert mon.miss_count == 0

    def test_calibrated_usually_tighter_than_analytical(self):
        """The point of calibration: earlier detection via smaller xi."""
        analytical = generate_taskset(seed=21, params=GeneratorParams(m=2))
        calibrated = calibrate_tolerances(
            generate_taskset(seed=21, params=PARAMS), horizon=3.0, margin=1.5
        )
        tighter = sum(
            1
            for t in calibrated.level(L.C)
            if t.tolerance < analytical[t.task_id].tolerance
        )
        assert tighter >= len(calibrated.level(L.C)) // 2
