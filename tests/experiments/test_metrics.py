"""Tests for experiment metrics (repro.experiments.metrics)."""

import pytest

from repro.core.monitor import NullMonitor, RecoveryEpisode, SimpleMonitor
from repro.experiments.metrics import RunResult, dissipation_time


class FakeCtl:
    def change_speed(self, s, now):
        pass


def monitor_with_episodes(episodes):
    mon = SimpleMonitor(FakeCtl(), s=0.5)
    mon.episodes = list(episodes)
    return mon


class TestDissipationTime:
    def test_no_episodes_zero(self):
        mon = NullMonitor(FakeCtl())
        assert dissipation_time(mon, 0.5, 10.0) == (0.0, False)

    def test_episode_after_overload(self):
        mon = monitor_with_episodes(
            [RecoveryEpisode(start=0.2, end=1.3, trigger=(0, 0))]
        )
        d, trunc = dissipation_time(mon, 0.5, 10.0)
        assert d == pytest.approx(0.8)
        assert not trunc

    def test_episode_closing_before_overload_end_is_zero(self):
        """DOUBLE's mid-gap recovery: clock already normal at overload end."""
        mon = monitor_with_episodes(
            [RecoveryEpisode(start=0.2, end=0.9, trigger=(0, 0))]
        )
        assert dissipation_time(mon, 2.0, 10.0) == (0.0, False)

    def test_last_episode_governs(self):
        mon = monitor_with_episodes(
            [
                RecoveryEpisode(start=0.2, end=0.9, trigger=(0, 0)),
                RecoveryEpisode(start=2.1, end=3.0, trigger=(0, 5)),
            ]
        )
        d, _ = dissipation_time(mon, 2.0, 10.0)
        assert d == pytest.approx(1.0)

    def test_open_episode_truncated(self):
        mon = monitor_with_episodes(
            [RecoveryEpisode(start=0.2, end=None, trigger=(0, 0))]
        )
        d, trunc = dissipation_time(mon, 0.5, 10.0)
        assert d == pytest.approx(9.5)
        assert trunc


class TestRunResult:
    def test_row_formatting(self):
        r = RunResult(
            scenario="SHORT", monitor="SIMPLE(s=0.6)", dissipation=0.7694,
            truncated=False, min_speed=0.6, miss_count=195, episodes=1,
            max_response_c=0.5944, sim_end=1.77, events=2802,
        )
        row = r.row()
        assert "SHORT" in row and "SIMPLE(s=0.6)" in row
        assert "769.4" in row
        assert "truncated" not in row

    def test_row_marks_truncation(self):
        r = RunResult(
            scenario="LONG", monitor="SIMPLE(s=1)", dissipation=29.0,
            truncated=True, min_speed=1.0, miss_count=1, episodes=1,
            max_response_c=1.0, sim_end=30.0, events=10,
        )
        assert "truncated" in r.row()
