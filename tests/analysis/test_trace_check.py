"""Tests for the brute-force trace checker (repro.analysis.trace_check)."""

import pytest

from repro.analysis.trace_check import (
    idle_normal_instants,
    is_idle_normal_instant,
    job_misses_tolerance,
    pending_jobs_at,
    verify_monitor_decisions,
)
from repro.core.monitor import SimpleMonitor
from repro.core.tolerance import fixed_tolerances
from repro.experiments.examples_fig2 import figure2_taskset, run_example
from repro.model.job import Job
from repro.model.taskset import TaskSet
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.sim.trace import Trace
from tests.conftest import make_c_task


def record(task, index, release, completion, pp=None):
    j = Job(task=task, index=index, release=release, exec_time=1.0)
    j.completion = completion
    j.actual_pp = pp
    tr = Trace()
    tr.record_job(j)
    return tr.jobs[0]


@pytest.fixture
def simple_ts():
    return fixed_tolerances(
        TaskSet([make_c_task(0, 4.0, 1.0, y=3.0), make_c_task(1, 6.0, 2.0, y=5.0)], m=2),
        2.0,
    )


class TestDef1:
    def test_completing_before_pp_meets(self, simple_ts):
        rec = record(simple_ts[0], 0, 0.0, 2.0, pp=None)
        assert not job_misses_tolerance(rec, simple_ts)

    def test_boundary_meets(self, simple_ts):
        rec = record(simple_ts[0], 0, 0.0, 5.0, pp=3.0)  # y + xi exactly
        assert not job_misses_tolerance(rec, simple_ts)

    def test_miss(self, simple_ts):
        rec = record(simple_ts[0], 0, 0.0, 5.5, pp=3.0)
        assert job_misses_tolerance(rec, simple_ts)

    def test_missing_tolerance_raises(self):
        ts = TaskSet([make_c_task(0, 4.0, 1.0, y=3.0)], m=1)
        rec = record(ts[0], 0, 0.0, 5.5, pp=3.0)
        with pytest.raises(ValueError, match="tolerance"):
            job_misses_tolerance(rec, ts)


class TestPendingAndIdle:
    def test_pending_window(self, simple_ts):
        tr = Trace()
        j = Job(task=simple_ts[0], index=0, release=1.0, exec_time=1.0)
        j.completion = 3.0
        tr.record_job(j)
        assert len(pending_jobs_at(tr, 0.5)) == 0
        assert len(pending_jobs_at(tr, 1.0)) == 1
        assert len(pending_jobs_at(tr, 2.9)) == 1
        assert len(pending_jobs_at(tr, 3.0)) == 0

    def test_idle_normal_requires_idle_cpu(self, simple_ts):
        """With as many eligible pending jobs as CPUs, not idle."""
        tr = Trace()
        for tid in (0, 1):
            j = Job(task=simple_ts[tid], index=0, release=0.0, exec_time=1.0)
            j.completion = 5.0
            tr.record_job(j)
        assert not is_idle_normal_instant(tr, simple_ts, 1.0)
        # With only one CPU available it is even less idle.
        assert not is_idle_normal_instant(tr, simple_ts, 1.0, available_cpus=1)

    def test_precedence_blocked_successors_dont_occupy_cpus(self, simple_ts):
        """Two pending jobs of ONE task count as one eligible job."""
        tr = Trace()
        for k in (0, 1):
            j = Job(task=simple_ts[0], index=k, release=float(k), exec_time=1.0)
            j.completion = 10.0 + k
            j.actual_pp = None
            tr.record_job(j)
        # Both pending at t=5, but only the head is eligible: a CPU idles.
        # They complete in time (pp unresolved = met): idle normal instant.
        assert is_idle_normal_instant(tr, simple_ts, 5.0)

    def test_pending_miss_blocks(self, simple_ts):
        tr = Trace()
        j = Job(task=simple_ts[0], index=0, release=0.0, exec_time=1.0)
        j.completion = 20.0
        j.actual_pp = 3.0  # lateness 17 > xi
        tr.record_job(j)
        assert not is_idle_normal_instant(tr, simple_ts, 5.0)

    def test_unfinished_pending_blocks(self, simple_ts):
        tr = Trace()
        j = Job(task=simple_ts[0], index=0, release=0.0, exec_time=1.0)
        tr.record_job(j)  # never completed
        assert not is_idle_normal_instant(tr, simple_ts, 5.0)

    def test_filter_helper(self, simple_ts):
        tr = Trace()
        j = Job(task=simple_ts[0], index=0, release=0.0, exec_time=1.0)
        j.completion = 2.0
        tr.record_job(j)
        out = idle_normal_instants(tr, simple_ts, [1.0, 3.0])
        assert out == [1.0, 3.0] or out == [3.0]  # 1.0: one pending job < 2 CPUs


class TestVerifyMonitorDecisions:
    def test_fig2c_recovery_justified(self):
        """The Fig. 2(c) episode exit is a genuine idle normal instant."""
        run = run_example(figure2_taskset(), overloaded=True,
                          recovery_speed=0.5, until=72.0)
        verdict = verify_monitor_decisions(run.monitor, run.trace, run.kernel.taskset)
        assert verdict.episodes_checked == 1
        assert verdict.ok, verdict.violations

    def test_generated_workload_episodes_justified(self):
        from repro.workload.generator import GeneratorParams, generate_taskset
        from repro.workload.scenarios import SHORT
        from repro.sim.budgets import BudgetEnforcedBehavior

        ts = generate_taskset(seed=8, params=GeneratorParams(m=2))
        kernel = MC2Kernel(
            ts,
            behavior=BudgetEnforcedBehavior(SHORT.behavior(), enforce_c=True),
            config=KernelConfig(),
        )
        mon = SimpleMonitor(kernel, s=0.5)
        kernel.attach_monitor(mon)
        trace = kernel.run(10.0)
        verdict = verify_monitor_decisions(mon, trace, ts)
        assert verdict.episodes_checked >= 1
        assert verdict.ok, verdict.violations
