"""Pinned regressions for the GEL response-time bound.

These exact systems falsified the original single-term bound
(x = x_rate only) during development: with small relative PPs, many jobs
share one priority point and the last must wait for nearly all other
tasks' carry-in — more than the top-(m-1) sum accounts for.  The
x_burst term fixes them; they are pinned here so the bound can never
regress (see docs/analysis.md §2).
"""

import pytest

from repro.analysis.bounds import gel_response_bounds
from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel as L
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.kernel import MC2Kernel

#: (m, [(period, utilization, relative_pp), ...]) — found by boundary
#: search; each previously produced a simulated response above the bound.
REGRESSIONS = [
    (2, [(2.0, 0.05, 0.0), (2.0, 0.05, 0.0), (2.0, 0.05, 0.0)]),
    (2, [(10.0, 0.05, 0.0), (10.0, 0.05, 0.0), (2.0, 0.05, 0.0)]),
    (2, [(10.0, 0.05, 0.0), (10.0, 0.05, 0.0), (10.0, 0.05, 0.0)]),
]


def build(m, params):
    tasks = [
        Task(task_id=i, level=L.C, period=T, pwcets={L.C: u * T}, relative_pp=y)
        for i, (T, u, y) in enumerate(params)
    ]
    return TaskSet(tasks, m=m)


@pytest.mark.parametrize("m,params", REGRESSIONS)
def test_pinned_systems_stay_within_bound(m, params):
    ts = build(m, params)
    bounds = gel_response_bounds(ts)
    assert bounds.is_finite
    trace = MC2Kernel(ts, behavior=ConstantBehavior(L.C)).run(60.0)
    for rec in trace.completed(L.C):
        assert rec.response_time <= bounds.absolute[rec.task_id] + 1e-9, (
            f"regression: tau{rec.task_id},{rec.index} R={rec.response_time} "
            f"> {bounds.absolute[rec.task_id]}"
        )


def test_burst_term_is_what_saves_these_cases():
    """Document the mechanism: for the pinned systems the burst term
    dominates the rate term (removing it would re-break them)."""
    from repro.analysis.supply import SupplyModel

    m, params = REGRESSIONS[0]
    ts = build(m, params)
    supply = SupplyModel.unrestricted(m)
    carry = [t.pwcet(L.C) for t in ts.level(L.C)]  # Y=0 => G = C
    x_rate = sum(sorted(carry, reverse=True)[: m - 1]) / (
        supply.total_rate - ts.utilization(L.C)
    )
    x_burst = (sum(carry) - min(carry)) / supply.total_rate
    assert x_burst > x_rate
    assert gel_response_bounds(ts).x == pytest.approx(x_burst)


def test_equal_pp_worst_case_is_tight_for_n_equal_tasks():
    """n equal tasks, Y=0, m CPUs: the last job's response is exactly
    ceil(n/m) * C, and the bound covers it."""
    n, m, c, period = 5, 2, 0.5, 10.0
    ts = build(m, [(period, c / period, 0.0)] * n)
    bounds = gel_response_bounds(ts)
    trace = MC2Kernel(ts, behavior=ConstantBehavior(L.C)).run(period)
    worst = max(r.response_time for r in trace.completed(L.C))
    assert worst == pytest.approx(-(-n // m) * c)  # ceil(n/m) * C
    assert worst <= bounds.max_absolute() + 1e-9
