"""Tests for the GEL response-time bounds (repro.analysis.bounds)."""

import math

import pytest

from repro.analysis.bounds import gel_response_bounds, response_bound_x
from repro.analysis.supply import SupplyModel
from repro.core.gel import gfl_relative_pps
from repro.model.task import CriticalityLevel as L
from repro.model.taskset import TaskSet
from tests.conftest import make_a_task, make_c_task


@pytest.fixture
def two_cpu_set():
    return TaskSet(
        [make_c_task(0, 4.0, 1.0, y=3.0), make_c_task(1, 8.0, 2.0, y=6.0)], m=2
    )


class TestResponseBoundX:
    def test_empty_is_zero(self):
        assert response_bound_x([], SupplyModel.unrestricted(2)) == 0.0

    def test_finite_with_slack(self, two_cpu_set):
        x = response_bound_x(two_cpu_set.tasks, SupplyModel.unrestricted(2))
        assert 0.0 <= x < math.inf

    def test_infinite_without_slack(self):
        tasks = TaskSet(
            [make_c_task(0, 1.0, 1.0, y=1.0), make_c_task(1, 1.0, 1.0, y=1.0)], m=2
        ).tasks
        assert response_bound_x(tasks, SupplyModel.unrestricted(2)) == math.inf

    def test_infinite_when_one_task_outstrips_every_cpu(self):
        """The Fig. 3 condition: u_i above any single CPU's availability."""
        tasks = (make_c_task(0, 6.0, 5.5, y=4.0),)
        supply = SupplyModel(alphas=(5 / 6, 5 / 6), sigmas=(0.0, 0.0))
        assert response_bound_x(tasks, supply) == math.inf

    def test_monotone_in_utilization(self):
        lo = (make_c_task(0, 4.0, 1.0, y=3.0), make_c_task(1, 4.0, 1.0, y=3.0))
        hi = (make_c_task(0, 4.0, 2.0, y=3.0), make_c_task(1, 4.0, 2.0, y=3.0))
        sm = SupplyModel.unrestricted(2)
        assert response_bound_x(lo, sm) <= response_bound_x(hi, sm)

    def test_monotone_in_burst(self, two_cpu_set):
        calm = SupplyModel(alphas=(1.0, 1.0), sigmas=(0.0, 0.0))
        bursty = SupplyModel(alphas=(1.0, 1.0), sigmas=(1.0, 1.0))
        assert response_bound_x(two_cpu_set.tasks, calm) <= response_bound_x(
            two_cpu_set.tasks, bursty
        )

    def test_larger_pps_reduce_x(self, two_cpu_set):
        """Carry-in terms (C - U*Y)+ shrink as Y grows."""
        sm = SupplyModel.unrestricted(2)
        x_small = response_bound_x(two_cpu_set.tasks, sm, pps={0: 0.0, 1: 0.0})
        x_large = response_bound_x(two_cpu_set.tasks, sm, pps={0: 10.0, 1: 10.0})
        assert x_large <= x_small

    def test_uniprocessor_has_no_carry_in_term(self):
        """With m = 1, the top-(m-1) sum is empty: x is burst/slack only."""
        tasks = (make_c_task(0, 4.0, 1.0, y=0.0),)
        x = response_bound_x(tasks, SupplyModel.unrestricted(1))
        assert x == 0.0

    def test_missing_pp_rejected(self):
        t = make_c_task(0, 4.0, 1.0, y=3.0)
        with pytest.raises(ValueError, match="relative PP"):
            response_bound_x((t,), SupplyModel.unrestricted(2), pps={})


class TestGelResponseBounds:
    def test_structure(self, two_cpu_set):
        b = gel_response_bounds(two_cpu_set)
        assert b.is_finite
        for t in two_cpu_set.level(L.C):
            c = t.pwcet(L.C)
            assert b.pp_relative[t.task_id] == pytest.approx(b.x + c)
            assert b.absolute[t.task_id] == pytest.approx(t.relative_pp + b.x + c)

    def test_default_supply_comes_from_taskset(self):
        ts = TaskSet(
            [make_a_task(10, 10.0, 0.5, cpu=0), make_c_task(0, 4.0, 1.0, y=3.0)],
            m=2,
        )
        with_ab = gel_response_bounds(ts)
        without_ab = gel_response_bounds(ts, supply=SupplyModel.unrestricted(2))
        assert with_ab.x >= without_ab.x

    def test_max_absolute(self, two_cpu_set):
        b = gel_response_bounds(two_cpu_set)
        assert b.max_absolute() == max(b.absolute.values())

    def test_gfl_improves_max_pp_relative_bound_over_gedf(self):
        """G-FL's raison d'etre: a lower maximum lateness bound than G-EDF.

        Comparing max over tasks of (absolute bound - period) — the
        lateness bound — under both PP assignments.
        """
        ts = TaskSet(
            [
                make_c_task(0, 10.0, 4.0),
                make_c_task(1, 10.0, 4.0),
                make_c_task(2, 20.0, 9.0),
            ],
            m=2,
        )
        gedf = gel_response_bounds(ts)  # Y = T by fixture default
        gfl = gel_response_bounds(ts, pps=gfl_relative_pps(ts.tasks, m=2))
        lateness_gedf = max(
            gedf.absolute[t.task_id] - t.period for t in ts.level(L.C)
        )
        lateness_gfl = max(
            gfl.absolute[t.task_id] - t.period for t in ts.level(L.C)
        )
        assert lateness_gfl <= lateness_gedf

    def test_infinite_bounds_flagged(self):
        ts = TaskSet(
            [make_c_task(0, 1.0, 1.0, y=1.0), make_c_task(1, 1.0, 1.0, y=1.0)], m=2
        )
        b = gel_response_bounds(ts)
        assert not b.is_finite
        assert all(math.isinf(v) for v in b.pp_relative.values())
