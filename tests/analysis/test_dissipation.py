"""Tests for the analytical dissipation bound."""

import math

import pytest

from repro.analysis.dissipation import dissipation_bound
from repro.model.taskset import TaskSet
from tests.conftest import make_c_task


@pytest.fixture
def slack_set():
    return TaskSet(
        [make_c_task(0, 4.0, 1.0, y=3.0), make_c_task(1, 8.0, 2.0, y=6.0)], m=2
    )


class TestDissipationBound:
    def test_finite_with_slack(self, slack_set):
        b = dissipation_bound(slack_set, overload_length=0.5, speed=0.6)
        assert b.is_finite
        assert b.bound > 0

    def test_monotone_in_overload_length(self, slack_set):
        short = dissipation_bound(slack_set, 0.5, 0.6)
        long_ = dissipation_bound(slack_set, 1.0, 0.6)
        assert long_.bound >= short.bound
        assert long_.backlog >= short.backlog

    def test_smaller_speed_drains_faster(self, slack_set):
        slow = dissipation_bound(slack_set, 0.5, 0.2)
        fast = dissipation_bound(slack_set, 0.5, 1.0)
        assert slow.drain_rate > fast.drain_rate
        assert slow.bound <= fast.bound

    def test_monotone_in_overload_factor(self, slack_set):
        mild = dissipation_bound(slack_set, 0.5, 0.6, overload_factor=2.0)
        severe = dissipation_bound(slack_set, 0.5, 0.6, overload_factor=10.0)
        assert severe.bound >= mild.bound

    def test_infinite_without_slack_at_speed(self):
        # U_C = 1.875 on m=2; at speed 1 drain = 2 - 1.875 > 0, but with a
        # pathological supply there is none.
        ts = TaskSet(
            [make_c_task(0, 1.0, 1.0, y=1.0), make_c_task(1, 1.0, 0.875, y=1.0)],
            m=2,
        )
        b = dissipation_bound(ts, 0.5, 1.0)
        # Fully-utilized-ish: settling term may be infinite.
        assert b.bound == math.inf or b.bound > 0

    def test_parameter_validation(self, slack_set):
        with pytest.raises(ValueError):
            dissipation_bound(slack_set, -1.0, 0.5)
        with pytest.raises(ValueError):
            dissipation_bound(slack_set, 1.0, 0.0)
        with pytest.raises(ValueError):
            dissipation_bound(slack_set, 1.0, 1.5)
        with pytest.raises(ValueError):
            dissipation_bound(slack_set, 1.0, 0.5, overload_factor=0.5)

    def test_zero_length_overload_still_has_carry_in(self, slack_set):
        b = dissipation_bound(slack_set, 0.0, 0.6)
        assert b.backlog > 0  # carry-in jobs
