"""Tests for the level-C SRT schedulability test."""


from repro.analysis.schedulability import check_level_c
from repro.analysis.supply import SupplyModel
from repro.model.taskset import TaskSet
from tests.conftest import make_a_task, make_c_task


class TestCheckLevelC:
    def test_schedulable_with_slack(self, tiny_c_taskset):
        res = check_level_c(tiny_c_taskset)
        assert res.schedulable
        assert res.capacity_margin > 0
        assert res.per_task_margin > 0

    def test_fully_utilized_fails_strict_passes_lenient(self):
        ts = TaskSet(
            [make_c_task(0, 1.0, 1.0, y=1.0), make_c_task(1, 1.0, 1.0, y=1.0)], m=2
        )
        assert not check_level_c(ts).schedulable
        assert check_level_c(ts, strict=False).schedulable

    def test_overcommitted_fails_both(self):
        ts = TaskSet([make_c_task(i, 1.0, 0.9) for i in range(3)], m=2)
        res = check_level_c(ts, strict=False)
        assert not res.schedulable
        assert res.capacity_margin < 0

    def test_per_task_bottleneck_detected(self):
        """Fig. 3: one task's utilization exceeding per-CPU availability."""
        ts = TaskSet(
            [
                make_a_task(10, 12.0, 2.0, cpu=0),
                make_a_task(11, 12.0, 2.0, cpu=1),
                make_c_task(0, 6.0, 5.5, y=4.0),
            ],
            m=2,
        )
        res = check_level_c(ts)
        assert not res.schedulable
        assert res.per_task_margin < 0
        assert res.bottleneck_task == 0

    def test_supply_override(self, tiny_c_taskset):
        tight = SupplyModel(alphas=(0.35, 0.35), sigmas=(0.0, 0.0))
        res = check_level_c(tiny_c_taskset, supply=tight)
        assert res.per_task_margin < 0  # u_max = 0.4 > alpha = 0.35
        assert not res.schedulable

    def test_explain_contains_margins(self, tiny_c_taskset):
        text = check_level_c(tiny_c_taskset).explain()
        assert "capacity margin" in text
        assert "per-task margin" in text

    def test_empty_level_c_schedulable(self):
        ts = TaskSet([make_a_task(0, 10.0, 0.5, cpu=0)], m=1)
        res = check_level_c(ts)
        assert res.schedulable
        assert res.bottleneck_task is None
