"""Tests for the A/B supply model (repro.analysis.supply)."""

import pytest

from repro.analysis.supply import SupplyModel
from repro.model.taskset import TaskSet
from tests.conftest import make_a_task, make_b_task, make_c_task


class TestFromTaskset:
    def test_rates_reflect_ab_utilization(self):
        ts = TaskSet(
            [
                make_a_task(0, 10.0, 0.5, cpu=0),   # u_C = 0.05
                make_b_task(1, 10.0, 0.5, cpu=0),   # u_C = 0.05
                make_a_task(2, 20.0, 1.0, cpu=1),   # u_C = 0.05
                make_c_task(3, 4.0, 1.0),
            ],
            m=2,
        )
        sm = SupplyModel.from_taskset(ts)
        assert sm.alphas == pytest.approx((0.9, 0.95))
        assert sm.total_rate == pytest.approx(1.85)

    def test_bursts_scale_with_pwcets(self):
        ts = TaskSet([make_a_task(0, 10.0, 0.5, cpu=0)], m=1)
        sm = SupplyModel.from_taskset(ts)
        # sigma = 2 * c * (1 - c/T) = 2 * 0.5 * 0.95
        assert sm.sigmas[0] == pytest.approx(0.95)

    def test_cpu_without_ab_is_full(self):
        ts = TaskSet([make_c_task(0, 4.0, 1.0)], m=3)
        sm = SupplyModel.from_taskset(ts)
        assert sm.alphas == (1.0, 1.0, 1.0)
        assert sm.total_burst == 0.0


class TestUnrestricted:
    def test_full_supply(self):
        sm = SupplyModel.unrestricted(4)
        assert sm.m == 4
        assert sm.total_rate == 4.0
        assert sm.max_alpha == 1.0
        assert sm.total_burst == 0.0


class TestSupplyLowerBound:
    def test_zero_for_nonpositive_interval(self):
        sm = SupplyModel(alphas=(0.9,), sigmas=(0.5,))
        assert sm.supply_lower_bound(0.0) == 0.0
        assert sm.supply_lower_bound(-1.0) == 0.0

    def test_linear_minus_burst(self):
        sm = SupplyModel(alphas=(0.9, 0.8), sigmas=(0.5, 0.5))
        assert sm.supply_lower_bound(10.0) == pytest.approx(1.7 * 10 - 1.0)

    def test_never_negative(self):
        sm = SupplyModel(alphas=(0.9,), sigmas=(100.0,))
        assert sm.supply_lower_bound(1.0) == 0.0

    def test_max_alpha(self):
        sm = SupplyModel(alphas=(0.7, 0.95, 0.8), sigmas=(0, 0, 0))
        assert sm.max_alpha == 0.95
