"""Tests for the recovery-speed selector (repro.analysis.speed_selection)."""

import math

import pytest

from repro.analysis.dissipation import dissipation_bound
from repro.analysis.speed_selection import select_recovery_speed
from repro.model.taskset import TaskSet
from repro.workload.generator import GeneratorParams, generate_taskset
from tests.conftest import make_c_task


@pytest.fixture(scope="module")
def ts():
    return generate_taskset(2015, GeneratorParams(m=2))


class TestSelectRecoverySpeed:
    def test_chosen_speed_meets_target(self, ts):
        choice = select_recovery_speed(ts, overload_length=0.5,
                                       target_dissipation=5.0)
        assert choice.feasible
        assert 0.0 < choice.speed <= 1.0
        assert choice.guaranteed_dissipation <= 5.0 + 1e-9

    def test_forward_bound_confirms(self, ts):
        choice = select_recovery_speed(ts, 0.5, target_dissipation=5.0)
        fwd = dissipation_bound(ts, 0.5, speed=choice.speed)
        assert fwd.bound == pytest.approx(choice.guaranteed_dissipation)

    def test_looser_target_gentler_speed(self, ts):
        tight = select_recovery_speed(ts, 0.5, target_dissipation=5.5)
        loose = select_recovery_speed(ts, 0.5, target_dissipation=20.0)
        assert tight.feasible and loose.feasible
        assert loose.speed >= tight.speed

    def test_target_below_s0_bound_infeasible(self, ts):
        """Targets under the bound's s->0 limit are reported infeasible."""
        from repro.analysis.dissipation import dissipation_bound

        floor = dissipation_bound(ts, 0.5, speed=1e-3).bound
        choice = select_recovery_speed(ts, 0.5, target_dissipation=0.9 * floor)
        assert not choice.feasible

    def test_very_loose_target_gives_full_speed(self, ts):
        choice = select_recovery_speed(ts, 0.5, target_dissipation=1e6)
        assert choice.speed == pytest.approx(1.0)

    def test_impossible_target_infeasible(self, ts):
        # Below the settling term no speed can help.
        choice = select_recovery_speed(ts, 0.5, target_dissipation=1e-6)
        assert not choice.feasible
        assert choice.speed is None
        assert math.isinf(choice.guaranteed_dissipation)

    def test_longer_overload_needs_slower_speed(self, ts):
        short = select_recovery_speed(ts, 0.5, target_dissipation=8.0)
        long_ = select_recovery_speed(ts, 2.0, target_dissipation=8.0)
        if long_.feasible:
            assert long_.speed <= short.speed

    def test_nonpositive_target_rejected(self, ts):
        with pytest.raises(ValueError, match="target"):
            select_recovery_speed(ts, 0.5, target_dissipation=0.0)

    def test_unschedulable_set_rejected(self):
        bad = TaskSet(
            [make_c_task(0, 1.0, 1.0, y=1.0), make_c_task(1, 1.0, 1.0, y=1.0)],
            m=2,
        )
        with pytest.raises(ValueError, match="finite"):
            select_recovery_speed(bad, 0.5, target_dissipation=10.0)
